//! Per-level candidate profiles: the curve behind the paper's memory
//! narrative.
//!
//! §V-A: "the key to optimal GPU performance is keeping the peak low enough
//! to stay in GPU memory, while still leaving enough work in the early and
//! late iterations to fill the GPU." This bench prints each dataset's
//! clique-list level sizes under every heuristic, showing how a better
//! bound flattens the peak (memory) without necessarily shortening the
//! curve (the search always runs ω − 1 levels deep — "the search will never
//! finish early because what we are solving for is the depth itself",
//! §VI).

use gmc_bench::impl_to_json;
use gmc_bench::{load_corpus, print_table, save_json, BenchEnv};
use gmc_dpp::Device;
use gmc_heuristic::HeuristicKind;
use gmc_mce::{MaxCliqueSolver, SolveError, SolverConfig};

/// Profiles are measured under a generous-but-finite budget so that
/// genuinely explosive unpruned searches abort instead of exhausting host
/// memory (they are reported as OOM rows).
const PROFILE_BUDGET: usize = 128 << 20;

struct ProfileRow {
    dataset: String,
    heuristic: String,
    lower_bound: u32,
    omega: u32,
    level_entries: Vec<usize>,
    peak_entries: usize,
    total_entries: usize,
}

impl_to_json!(ProfileRow {
    dataset,
    heuristic,
    lower_bound,
    omega,
    level_entries,
    peak_entries,
    total_entries
});

fn main() {
    let env = BenchEnv::from_env();
    env.banner("Level profiles: candidate counts per search level");
    // A focused slice: one dataset per category.
    let datasets: Vec<_> = load_corpus(&env).into_iter().step_by(7).collect();

    let mut rows = Vec::new();
    for dataset in &datasets {
        for kind in [
            HeuristicKind::None,
            HeuristicKind::SingleDegree,
            HeuristicKind::MultiDegree,
        ] {
            let device = Device::new(env.workers, PROFILE_BUDGET);
            device.exec().set_launch_overhead(env.launch_overhead);
            let solver = MaxCliqueSolver::with_config(
                device,
                SolverConfig {
                    heuristic: kind,
                    early_exit: false, // keep the whole curve
                    ..SolverConfig::default()
                },
            );
            match solver.solve(&dataset.graph) {
                Ok(result) => rows.push(ProfileRow {
                    dataset: dataset.name().to_string(),
                    heuristic: kind.name().to_string(),
                    lower_bound: result.stats.lower_bound,
                    omega: result.clique_number,
                    peak_entries: result
                        .stats
                        .level_entries
                        .iter()
                        .copied()
                        .max()
                        .unwrap_or(0),
                    total_entries: result.stats.level_entries.iter().sum(),
                    level_entries: result.stats.level_entries,
                }),
                Err(err @ SolveError::FaultRetriesExhausted { .. }) => {
                    panic!("no fault plan is armed in this bench: {err}")
                }
                Err(err @ SolveError::Cancelled(_)) => {
                    panic!("no cancel token is installed in this bench: {err}")
                }
                Err(SolveError::DeviceOom(_)) => rows.push(ProfileRow {
                    dataset: dataset.name().to_string(),
                    heuristic: kind.name().to_string(),
                    lower_bound: 0,
                    omega: 0,
                    peak_entries: 0,
                    total_entries: 0,
                    level_entries: Vec::new(),
                }),
            }
        }
    }

    print_table(
        &[
            "Dataset",
            "Heuristic",
            "ω̄",
            "ω",
            "Peak lvl",
            "Total",
            "Levels",
        ],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.dataset.clone(),
                    r.heuristic.clone(),
                    r.lower_bound.to_string(),
                    r.omega.to_string(),
                    r.peak_entries.to_string(),
                    r.total_entries.to_string(),
                    format!("{:?}", summarize(&r.level_entries)),
                ]
            })
            .collect::<Vec<_>>(),
    );

    // Aggregate: how much does the multi-run bound flatten the peak?
    let mut flattenings = Vec::new();
    for dataset in &datasets {
        let peak_of = |heuristic: &str| {
            rows.iter()
                .find(|r| r.dataset == dataset.name() && r.heuristic == heuristic)
                .map(|r| r.peak_entries.max(1))
        };
        if let (Some(unpruned), Some(pruned)) = (peak_of("none"), peak_of("multi-degree")) {
            if unpruned > 1 && pruned > 1 {
                flattenings.push(unpruned as f64 / pruned as f64);
            }
        }
    }
    println!(
        "\nGeomean peak-level reduction from multi-run degree bound: {:.1}x",
        gmc_bench::geometric_mean(&flattenings)
    );
    println!("(every profile is ω − 1 levels long regardless of pruning — the");
    println!(" paper's §VI point that BFS cannot finish early: the depth *is* ω)");

    save_json(&env, "level_profile", &rows);
}

/// First levels verbatim, then every level is too long to print — compact
/// to head + peak + tail.
fn summarize(levels: &[usize]) -> Vec<usize> {
    if levels.len() <= 8 {
        levels.to_vec()
    } else {
        let mut v = levels[..4].to_vec();
        v.push(*levels.iter().max().unwrap());
        v.extend_from_slice(&levels[levels.len() - 3..]);
        v
    }
}
