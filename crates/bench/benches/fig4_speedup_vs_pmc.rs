//! Figure 4: per-dataset speedup over the PMC depth-first CPU baseline for
//! the fastest breadth-first and windowed configurations.
//!
//! The paper's findings: the breadth-first solver wins on low-degree
//! graphs, PMC wins on high-degree graphs, and graphs only solvable with
//! windowing favour PMC strongly. The overall geometric-mean speedup across
//! solvable graphs is the paper's headline 1.9×.

use gmc_bench::impl_to_json;
use gmc_bench::{geometric_mean, load_corpus, print_table, save_json, BenchEnv, RunOutcome};
use gmc_heuristic::HeuristicKind;
use gmc_mce::{SolverConfig, WindowConfig};

struct SpeedupPoint {
    dataset: String,
    category: String,
    avg_degree: f64,
    edges: usize,
    pmc_ms: f64,
    bfs_ms: Option<f64>,
    windowed_ms: Option<f64>,
    bfs_speedup: Option<f64>,
    windowed_speedup: Option<f64>,
}

impl_to_json!(SpeedupPoint {
    dataset,
    category,
    avg_degree,
    edges,
    pmc_ms,
    bfs_ms,
    windowed_ms,
    bfs_speedup,
    windowed_speedup
});

struct Record {
    points: Vec<SpeedupPoint>,
    geomean_bfs_speedup: f64,
    geomean_windowed_speedup: f64,
    geomean_low_degree_bfs_speedup: f64,
    geomean_high_degree_bfs_speedup: f64,
}

impl_to_json!(Record {
    points,
    geomean_bfs_speedup,
    geomean_windowed_speedup,
    geomean_low_degree_bfs_speedup,
    geomean_high_degree_bfs_speedup
});

const CONFIG_LADDER: [HeuristicKind; 4] = [
    HeuristicKind::None,
    HeuristicKind::SingleDegree,
    HeuristicKind::MultiDegree,
    HeuristicKind::MultiCore,
];

fn main() {
    let env = BenchEnv::from_env();
    env.banner("Figure 4: speedup over Rossi PMC");
    let datasets = load_corpus(&env);

    let mut points: Vec<SpeedupPoint> = Vec::new();
    for dataset in &datasets {
        let pmc = gmc_pmc::ParallelBranchBound::new(env.pmc_threads).solve(&dataset.graph);
        let pmc_ms = pmc.stats.total_time.as_secs_f64() * 1e3;

        let mut bfs_ms: Option<f64> = None;
        for kind in CONFIG_LADDER {
            if let RunOutcome::Solved(rec) = env.run_averaged(
                &dataset.graph,
                &SolverConfig {
                    heuristic: kind,
                    ..SolverConfig::default()
                },
            ) {
                // Cross-check the two solvers agree before timing them
                // against each other.
                assert_eq!(
                    rec.omega,
                    pmc.clique_number,
                    "{}: BFS and PMC disagree on ω",
                    dataset.name()
                );
                bfs_ms = Some(bfs_ms.map_or(rec.total_ms, |b: f64| b.min(rec.total_ms)));
            }
        }

        let mut windowed_ms: Option<f64> = None;
        for size in [1024, 8192, 32768] {
            if let RunOutcome::Solved(rec) = env.run_averaged(
                &dataset.graph,
                &SolverConfig {
                    heuristic: HeuristicKind::MultiDegree,
                    window: Some(WindowConfig::with_size(size)),
                    ..SolverConfig::default()
                },
            ) {
                assert_eq!(rec.omega, pmc.clique_number);
                windowed_ms = Some(windowed_ms.map_or(rec.total_ms, |b: f64| b.min(rec.total_ms)));
            }
        }

        points.push(SpeedupPoint {
            dataset: dataset.name().to_string(),
            category: dataset.spec.category.to_string(),
            avg_degree: dataset.avg_degree(),
            edges: dataset.graph.num_edges(),
            pmc_ms,
            bfs_ms,
            windowed_ms,
            bfs_speedup: bfs_ms.map(|m| pmc_ms / m),
            windowed_speedup: windowed_ms.map(|m| pmc_ms / m),
        });
    }

    points.sort_by(|a, b| a.avg_degree.total_cmp(&b.avg_degree));
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                p.dataset.clone(),
                format!("{:.1}", p.avg_degree),
                format!("{:.1}", p.pmc_ms),
                p.bfs_speedup.map_or("OOM".into(), |s| format!("{s:.2}x")),
                p.windowed_speedup
                    .map_or("OOM".into(), |s| format!("{s:.2}x")),
            ]
        })
        .collect();
    print_table(
        &[
            "Dataset",
            "avg_deg",
            "PMC ms",
            "BFS speedup",
            "Windowed speedup",
        ],
        &rows,
    );

    let bfs_speedups: Vec<f64> = points.iter().filter_map(|p| p.bfs_speedup).collect();
    let win_speedups: Vec<f64> = points.iter().filter_map(|p| p.windowed_speedup).collect();
    // Low/high degree split at the corpus median, mirroring the paper's
    // "wins on low degree, loses on high degree" claim.
    let mut degrees: Vec<f64> = points.iter().map(|p| p.avg_degree).collect();
    degrees.sort_by(f64::total_cmp);
    let median = degrees[degrees.len() / 2];
    let low: Vec<f64> = points
        .iter()
        .filter(|p| p.avg_degree <= median)
        .filter_map(|p| p.bfs_speedup)
        .collect();
    let high: Vec<f64> = points
        .iter()
        .filter(|p| p.avg_degree > median)
        .filter_map(|p| p.bfs_speedup)
        .collect();

    let record = Record {
        geomean_bfs_speedup: geometric_mean(&bfs_speedups),
        geomean_windowed_speedup: geometric_mean(&win_speedups),
        geomean_low_degree_bfs_speedup: geometric_mean(&low),
        geomean_high_degree_bfs_speedup: geometric_mean(&high),
        points,
    };
    println!(
        "\nGeomean BFS speedup over PMC:      {:.2}x (paper: 1.9x)",
        record.geomean_bfs_speedup
    );
    println!(
        "Geomean windowed speedup over PMC: {:.2}x",
        record.geomean_windowed_speedup
    );
    println!(
        "Low-degree half:  {:.2}x   High-degree half: {:.2}x (paper: ours wins low, PMC wins high)",
        record.geomean_low_degree_bfs_speedup, record.geomean_high_degree_bfs_speedup
    );
    save_json(&env, "fig4_speedup_vs_pmc", &record);
}
