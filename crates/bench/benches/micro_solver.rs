//! Micro-benchmarks for the solver phases: heuristics, setup and
//! end-to-end solves on representative corpus datasets, plus the PMC
//! baseline on the same instances. Runs on the in-tree harness.

use gmc_bench::harness::Harness;
use gmc_corpus::{by_name, Tier};
use gmc_dpp::Device;
use gmc_graph::Csr;
use gmc_heuristic::HeuristicKind;
use gmc_mce::{MaxCliqueSolver, SolverConfig, WindowConfig};
use gmc_pmc::ParallelBranchBound;

fn dataset(name: &str) -> Csr {
    by_name(Tier::Smoke, name)
        .unwrap_or_else(|| panic!("dataset {name}"))
        .load()
}

fn bench_heuristics(h: &mut Harness) {
    let device = Device::unlimited();
    let graph = dataset("soc-sphere-05");
    let mut group = h.group("heuristic");
    for kind in [
        HeuristicKind::SingleDegree,
        HeuristicKind::SingleCore,
        HeuristicKind::MultiDegree,
        HeuristicKind::MultiCore,
    ] {
        group.bench(kind.name(), |b| {
            b.iter(|| gmc_heuristic::run_heuristic(&device, &graph, kind, None).unwrap());
        });
    }
    group.finish();
}

fn bench_setup(h: &mut Harness) {
    let device = Device::unlimited();
    let graph = dataset("socfb-campus-07");
    h.bench("setup/preview_socfb", |b| {
        b.iter(|| gmc_mce::preview_setup(&device, &graph, &SolverConfig::default()).unwrap());
    });
}

fn bench_full_solve(h: &mut Harness) {
    let mut group = h.group("solve");
    for name in [
        "road-grid-02",
        "ca-papers-03",
        "socfb-campus-04",
        "web-crawl-03",
    ] {
        let graph = dataset(name);
        group.bench(&format!("bfs/{name}"), |b| {
            let solver = MaxCliqueSolver::new(Device::unlimited());
            b.iter(|| solver.solve(&graph).unwrap());
        });
        group.bench(&format!("windowed/{name}"), |b| {
            let solver =
                MaxCliqueSolver::new(Device::unlimited()).windowed(WindowConfig::with_size(1024));
            b.iter(|| solver.solve(&graph).unwrap());
        });
        group.bench(&format!("pmc/{name}"), |b| {
            let pmc = ParallelBranchBound::with_default_parallelism();
            b.iter(|| pmc.solve(&graph));
        });
    }
    group.finish();
}

fn bench_expansion_heavy(h: &mut Harness) {
    // A denser instance exercising multiple expansion levels.
    let graph = gmc_graph::generators::gnp(400, 0.15, 99);
    h.bench("solve/gnp_400_dense", |b| {
        let solver = MaxCliqueSolver::new(Device::unlimited());
        b.iter(|| solver.solve(&graph).unwrap());
    });
}

fn main() {
    let mut harness = Harness::from_args();
    bench_heuristics(&mut harness);
    bench_setup(&mut harness);
    bench_full_solve(&mut harness);
    bench_expansion_heavy(&mut harness);
    harness.finish();
}
