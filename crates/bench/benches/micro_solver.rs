//! Criterion micro-benchmarks for the solver phases: heuristics, setup and
//! end-to-end solves on representative corpus datasets, plus the PMC
//! baseline on the same instances.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gmc_corpus::{by_name, Tier};
use gmc_dpp::Device;
use gmc_graph::Csr;
use gmc_heuristic::HeuristicKind;
use gmc_mce::{MaxCliqueSolver, SolverConfig, WindowConfig};
use gmc_pmc::ParallelBranchBound;

fn dataset(name: &str) -> Csr {
    by_name(Tier::Smoke, name)
        .unwrap_or_else(|| panic!("dataset {name}"))
        .load()
}

fn bench_heuristics(c: &mut Criterion) {
    let device = Device::unlimited();
    let graph = dataset("soc-sphere-05");
    let mut group = c.benchmark_group("heuristic");
    for kind in [
        HeuristicKind::SingleDegree,
        HeuristicKind::SingleCore,
        HeuristicKind::MultiDegree,
        HeuristicKind::MultiCore,
    ] {
        group.bench_with_input(
            BenchmarkId::from_parameter(kind.name()),
            &kind,
            |b, &kind| {
                b.iter(|| gmc_heuristic::run_heuristic(&device, &graph, kind, None).unwrap());
            },
        );
    }
    group.finish();
}

fn bench_setup(c: &mut Criterion) {
    let device = Device::unlimited();
    let graph = dataset("socfb-campus-07");
    c.bench_function("setup/preview_socfb", |b| {
        b.iter(|| gmc_mce::preview_setup(&device, &graph, &SolverConfig::default()).unwrap());
    });
}

fn bench_full_solve(c: &mut Criterion) {
    let mut group = c.benchmark_group("solve");
    for name in [
        "road-grid-02",
        "ca-papers-03",
        "socfb-campus-04",
        "web-crawl-03",
    ] {
        let graph = dataset(name);
        group.bench_with_input(BenchmarkId::new("bfs", name), &graph, |b, graph| {
            let solver = MaxCliqueSolver::new(Device::unlimited());
            b.iter(|| solver.solve(graph).unwrap());
        });
        group.bench_with_input(BenchmarkId::new("windowed", name), &graph, |b, graph| {
            let solver =
                MaxCliqueSolver::new(Device::unlimited()).windowed(WindowConfig::with_size(1024));
            b.iter(|| solver.solve(graph).unwrap());
        });
        group.bench_with_input(BenchmarkId::new("pmc", name), &graph, |b, graph| {
            let pmc = ParallelBranchBound::with_default_parallelism();
            b.iter(|| pmc.solve(graph));
        });
    }
    group.finish();
}

fn bench_expansion_heavy(c: &mut Criterion) {
    // A denser instance exercising multiple expansion levels.
    let graph = gmc_graph::generators::gnp(400, 0.15, 99);
    c.bench_function("solve/gnp_400_dense", |b| {
        let solver = MaxCliqueSolver::new(Device::unlimited());
        b.iter(|| solver.solve(&graph).unwrap());
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_heuristics, bench_setup, bench_full_solve, bench_expansion_heavy
);
criterion_main!(benches);
