//! Sublist-local bitmap fast path — word-parallel tail intersection.
//!
//! The fused count kernel can replace its scalar edge-oracle walk with an
//! m×m sublist-local adjacency bitmap built straight from the CSR: the tail
//! intersection becomes shift + masked popcount, 64 candidates per word
//! (`SolverConfig::local_bits`). This bench quantifies both the probe
//! savings and the wall-clock effect against the scalar fused walk
//! (`LocalBitsMode::Off`, the PR 2 pipeline bit for bit).
//!
//! Two modes:
//!
//! * Default: harness timings (`local_bits/<mode>/<dataset>`) on dense and
//!   sparse representatives, followed by a probe sweep over the whole smoke
//!   corpus (saved as `local_bits.json`).
//! * `GMC_PERF_GATE=1`: CI gate. On the dense, Facebook-like gate graphs
//!   the auto mode must hold wall-clock parity with the scalar walk (within
//!   the harness's 5% noise band) and the forced bitmap path must cut at
//!   least 80% of the scalar edge-oracle probes; on sparse graphs — where
//!   the auto heuristic keeps every sublist scalar — it may never be more
//!   than 10% slower.

use std::process::ExitCode;
use std::time::Instant;

use gmc_bench::harness::Harness;
use gmc_bench::{impl_to_json, print_table, save_json, BenchEnv};
use gmc_corpus::{corpus, Category, Tier};
use gmc_dpp::Device;
use gmc_graph::Csr;
use gmc_mce::{LocalBitsMode, MaxCliqueSolver};

/// Dense gate instances: Facebook-like corpus graphs plus a planted-clique
/// generator graph with hub sublists long past the 64-bit inline boundary.
const DENSE: &[&str] = &["socfb-campus-04", "socfb-campus-13"];

/// Sparse gate instances: short-sublist graphs where the auto heuristic
/// must keep the pipeline scalar and therefore cost-free.
const SPARSE: &[&str] = &["road-grid-02", "ca-papers-03"];

fn dataset(name: &str) -> Csr {
    gmc_corpus::by_name(Tier::Smoke, name)
        .unwrap_or_else(|| panic!("dataset {name}"))
        .load()
}

/// A dense community graph whose planted clique forms sublists well past
/// the auto threshold and the inline 64-bit mask.
fn planted_dense() -> Csr {
    let base = gmc_graph::generators::gnp(600, 0.3, 7);
    gmc_graph::generators::plant_clique(&base, 80, 17).0
}

fn solver(local: LocalBitsMode) -> MaxCliqueSolver {
    MaxCliqueSolver::new(Device::unlimited())
        .fused(true)
        .local_bits(local)
}

struct LocalBitsRow {
    dataset: String,
    category: String,
    scalar_queries: u64,
    auto_queries: u64,
    auto_avoided: u64,
    auto_rows: u64,
    on_queries: u64,
    on_avoided: u64,
    on_reduction_pct: f64,
}

impl_to_json!(LocalBitsRow {
    dataset,
    category,
    scalar_queries,
    auto_queries,
    auto_avoided,
    auto_rows,
    on_queries,
    on_avoided,
    on_reduction_pct
});

/// One solve per mode over the whole smoke corpus: the probe counters are
/// deterministic, so no repetition is needed. Also asserts the exact
/// accounting invariant — every scalar probe is either performed or
/// reported as covered, never dropped.
fn probe_sweep() -> Vec<LocalBitsRow> {
    corpus(Tier::Smoke)
        .iter()
        .map(|spec| {
            let graph = spec.load();
            let run = |local| solver(local).solve(&graph).expect("unlimited device");
            let off = run(LocalBitsMode::Off);
            let auto = run(LocalBitsMode::Auto);
            let on = run(LocalBitsMode::On);
            for r in [&auto, &on] {
                assert_eq!(r.cliques, off.cliques, "{}", spec.name);
                assert_eq!(
                    r.stats.oracle_queries + r.stats.local_bits.probes_avoided,
                    off.stats.oracle_queries,
                    "{}",
                    spec.name
                );
            }
            let reduction = if off.stats.oracle_queries == 0 {
                0.0
            } else {
                100.0 * (1.0 - on.stats.oracle_queries as f64 / off.stats.oracle_queries as f64)
            };
            LocalBitsRow {
                dataset: spec.name.clone(),
                category: spec.category.prefix().to_string(),
                scalar_queries: off.stats.oracle_queries,
                auto_queries: auto.stats.oracle_queries,
                auto_avoided: auto.stats.local_bits.probes_avoided,
                auto_rows: auto.stats.local_bits.rows_built,
                on_queries: on.stats.oracle_queries,
                on_avoided: on.stats.local_bits.probes_avoided,
                on_reduction_pct: reduction,
            }
        })
        .collect()
}

fn print_sweep(rows: &[LocalBitsRow]) {
    println!("\n-- Edge-oracle probes per solve: scalar walk vs sublist bitmaps --");
    print_table(
        &[
            "Dataset",
            "Scalar queries",
            "Auto queries",
            "Auto avoided",
            "Auto rows",
            "On queries",
            "On saved %",
        ],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.dataset.clone(),
                    r.scalar_queries.to_string(),
                    r.auto_queries.to_string(),
                    r.auto_avoided.to_string(),
                    r.auto_rows.to_string(),
                    r.on_queries.to_string(),
                    format!("{:.1}", r.on_reduction_pct),
                ]
            })
            .collect::<Vec<_>>(),
    );
}

fn bench() {
    let mut harness = Harness::from_args();
    let mut group = harness.group("local_bits");
    let mut graphs: Vec<(String, Csr)> = DENSE
        .iter()
        .chain(SPARSE)
        .map(|n| (n.to_string(), dataset(n)))
        .collect();
    graphs.push(("planted_600_dense".into(), planted_dense()));
    for (name, graph) in &graphs {
        for (label, local) in [
            ("auto", LocalBitsMode::Auto),
            ("scalar", LocalBitsMode::Off),
        ] {
            group.bench(&format!("{label}/{name}"), |b| {
                let s = solver(local);
                b.iter(|| s.solve(graph).unwrap());
            });
        }
    }
    group.finish();

    let rows = probe_sweep();
    print_sweep(&rows);
    save_json(&BenchEnv::from_env(), "local_bits", rows.as_slice());
    harness.finish();
}

/// Paired per-iteration milliseconds `(auto, scalar)`, noise-hardened the
/// same three ways as `micro_fused_expand`: ≥20 ms batches, interleaved
/// sides, minimum over `samples` batches.
fn paired_min_ms(samples: usize, graph: &Csr) -> (f64, f64) {
    let run = |local: LocalBitsMode| {
        solver(local).solve(graph).unwrap();
    };
    let start = Instant::now();
    run(LocalBitsMode::Auto);
    run(LocalBitsMode::Off); // warmup both sides + calibration probe
    let per_iter = (start.elapsed().as_secs_f64() / 2.0).max(1e-9);
    let iters = ((0.020 / per_iter).ceil() as usize).clamp(1, 100_000);
    for _ in 0..2 * iters {
        run(LocalBitsMode::Auto);
    }
    let mut best = [f64::INFINITY; 2];
    for _ in 0..samples.max(1) {
        for (slot, local) in [(0, LocalBitsMode::Auto), (1, LocalBitsMode::Off)] {
            let start = Instant::now();
            for _ in 0..iters {
                run(local);
            }
            best[slot] = best[slot].min(start.elapsed().as_secs_f64() * 1e3 / iters as f64);
        }
    }
    (best[0], best[1])
}

fn gate() -> ExitCode {
    let samples: usize = std::env::var("GMC_BENCH_SAMPLES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(5);
    let mut failed = false;

    println!("-- Perf gate: sublist bitmaps vs scalar fused walk --");
    let mut dense: Vec<(String, Csr)> = DENSE.iter().map(|n| (n.to_string(), dataset(n))).collect();
    dense.push(("planted_600_dense".into(), planted_dense()));
    let sparse: Vec<(String, Csr)> = SPARSE.iter().map(|n| (n.to_string(), dataset(n))).collect();
    // Dense shares the 5% noise band every wall-clock gate in this harness
    // uses (`micro_fused_expand`); sparse gets double because its sub-ms
    // solves amplify scheduler jitter and auto must merely stay cost-free.
    for (graphs, slack, regime) in [(&dense, 1.05, "dense"), (&sparse, 1.10, "sparse")] {
        println!("   ({regime}: auto must be ≤ {slack}× scalar)");
        for (name, graph) in graphs.iter() {
            let (auto_ms, scalar_ms) = paired_min_ms(samples, graph);
            let ok = auto_ms <= scalar_ms * slack;
            println!(
                "{name:<24} auto {auto_ms:>8.3} ms  scalar {scalar_ms:>8.3} ms  {}",
                if ok { "ok" } else { "FAIL" }
            );
            failed |= !ok;
        }
    }

    let rows = probe_sweep();
    print_sweep(&rows);
    // Probe gate: over the Facebook-like smoke graphs the bitmap path must
    // cover at least 80% of the scalar walk's edge-oracle probes.
    let (on_total, off_total) = rows
        .iter()
        .filter(|r| r.category == Category::Facebook.prefix())
        .fold((0u64, 0u64), |(on, off), r| {
            (on + r.on_queries, off + r.scalar_queries)
        });
    let saved = 100.0 * (1.0 - on_total as f64 / off_total as f64);
    let probes_ok = on_total * 10 <= off_total * 2;
    println!(
        "\nsocfb oracle probes: bitmap {on_total}, scalar {off_total} ({saved:.1}% saved, \
         gate ≥80%) {}",
        if probes_ok { "ok" } else { "FAIL" }
    );
    failed |= !probes_ok;

    if failed {
        eprintln!("perf gate FAILED");
        ExitCode::FAILURE
    } else {
        println!("perf gate passed");
        ExitCode::SUCCESS
    }
}

fn main() -> ExitCode {
    if std::env::var("GMC_PERF_GATE").as_deref() == Ok("1") {
        gate()
    } else {
        bench();
        ExitCode::SUCCESS
    }
}
