//! Figure 6: peak device memory, windowed search vs. full breadth-first.
//!
//! With the multi-run degree heuristic (the paper's setting), each dataset
//! runs the full breadth-first solver and the windowed variant at three
//! window sizes. The paper reports 85–94% average memory reductions, with
//! smaller windows saving more, at a runtime cost (geomean speedups of
//! roughly 0.53× at 1024 and 0.89× at 32768).

use gmc_bench::impl_to_json;
use gmc_bench::{
    geometric_mean, load_corpus, print_table, run_solver, save_json, BenchEnv, RunOutcome,
};
use gmc_heuristic::HeuristicKind;
use gmc_mce::{SolverConfig, WindowConfig};

struct MemoryPoint {
    dataset: String,
    edges: usize,
    full_peak_bytes: Option<usize>,
    full_ms: Option<f64>,
    full_launches: Option<u64>,
    windowed: Vec<WindowedPoint>,
}

impl_to_json!(MemoryPoint {
    dataset,
    edges,
    full_peak_bytes,
    full_ms,
    full_launches,
    windowed
});

struct WindowedPoint {
    size: usize,
    peak_bytes: Option<usize>,
    ms: Option<f64>,
    launches: Option<u64>,
}

impl_to_json!(WindowedPoint {
    size,
    peak_bytes,
    ms,
    launches
});

struct Record {
    points: Vec<MemoryPoint>,
    mean_reduction_pct: Vec<(usize, f64)>,
    geomean_speedup_vs_full: Vec<(usize, f64)>,
}

impl_to_json!(Record {
    points,
    mean_reduction_pct,
    geomean_speedup_vs_full
});

const WINDOW_SIZES: [usize; 3] = [1024, 8192, 32768];

fn main() {
    let env = BenchEnv::from_env();
    env.banner("Figure 6: windowed vs full breadth-first memory usage");
    let datasets = load_corpus(&env);

    let mut points: Vec<MemoryPoint> = Vec::new();
    for dataset in &datasets {
        let base_config = SolverConfig {
            heuristic: HeuristicKind::MultiDegree,
            ..SolverConfig::default()
        };
        let device = env.device();
        let full = run_solver(&device, &dataset.graph, base_config.clone()).expect("runs");
        let (full_peak, full_ms, full_launches) = match &full {
            RunOutcome::Solved(r) => (Some(r.peak_bytes), Some(r.total_ms), Some(r.launches)),
            RunOutcome::Oom => (None, None, None),
        };

        let mut windowed = Vec::new();
        for size in WINDOW_SIZES {
            let device = env.device();
            let outcome = run_solver(
                &device,
                &dataset.graph,
                SolverConfig {
                    window: Some(WindowConfig::with_size(size)),
                    ..base_config.clone()
                },
            )
            .expect("runs");
            match outcome {
                RunOutcome::Solved(r) => windowed.push(WindowedPoint {
                    size,
                    peak_bytes: Some(r.peak_bytes),
                    ms: Some(r.total_ms),
                    launches: Some(r.launches),
                }),
                RunOutcome::Oom => windowed.push(WindowedPoint {
                    size,
                    peak_bytes: None,
                    ms: None,
                    launches: None,
                }),
            }
        }
        points.push(MemoryPoint {
            dataset: dataset.name().to_string(),
            edges: dataset.graph.num_edges(),
            full_peak_bytes: full_peak,
            full_ms,
            full_launches,
            windowed,
        });
    }

    // Per-dataset table.
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            let fmt_bytes = |b: Option<usize>| {
                b.map_or("OOM".to_string(), |v| format!("{:.1}K", v as f64 / 1024.0))
            };
            let mut row = vec![p.dataset.clone(), fmt_bytes(p.full_peak_bytes)];
            for w in &p.windowed {
                row.push(fmt_bytes(w.peak_bytes));
            }
            row
        })
        .collect();
    print_table(
        &["Dataset", "Full peak", "Win 1024", "Win 8192", "Win 32768"],
        &rows,
    );

    // Aggregates: memory reduction and speedup vs full, per window size,
    // over datasets where both runs finished.
    let mut mean_reduction_pct = Vec::new();
    let mut geomean_speedup = Vec::new();
    for (i, size) in WINDOW_SIZES.iter().enumerate() {
        let mut reductions = Vec::new();
        let mut speedups = Vec::new();
        for p in &points {
            if let (Some(full_peak), Some(full_ms)) = (p.full_peak_bytes, p.full_ms) {
                if let (Some(win_peak), Some(win_ms)) = (p.windowed[i].peak_bytes, p.windowed[i].ms)
                {
                    if full_peak > 0 {
                        reductions
                            .push(100.0 * (1.0 - win_peak as f64 / full_peak as f64).max(0.0));
                    }
                    if win_ms > 0.0 {
                        speedups.push(full_ms / win_ms);
                    }
                }
            }
        }
        let mean_red = reductions.iter().sum::<f64>() / reductions.len().max(1) as f64;
        mean_reduction_pct.push((*size, mean_red));
        geomean_speedup.push((*size, geometric_mean(&speedups)));
    }

    println!("\nMean peak-memory reduction (paper: 85-94%, larger for smaller windows):");
    for (size, red) in &mean_reduction_pct {
        println!("  window {size:>6}: {red:.1}%");
    }
    println!("Geomean windowed speedup vs full (paper: 0.53x @1024, 0.89x @32768):");
    for (size, sp) in &geomean_speedup {
        println!("  window {size:>6}: {sp:.2}x");
    }
    // Kernel-launch inflation: the fixed-cost multiplier real GPU hardware
    // pays per window (the physical cause of the paper's windowed slowdown,
    // which a single-core host cannot express in wall time).
    println!("Geomean launch-count ratio windowed/full (GPU fixed-cost proxy):");
    for (i, size) in WINDOW_SIZES.iter().enumerate() {
        let ratios: Vec<f64> = points
            .iter()
            .filter_map(|p| match (p.full_launches, p.windowed[i].launches) {
                (Some(f), Some(w)) if f > 0 => Some(w as f64 / f as f64),
                _ => None,
            })
            .collect();
        println!(
            "  window {size:>6}: {:.1}x more launches",
            geometric_mean(&ratios)
        );
    }

    // Solvability: how many OOM datasets windowing rescues (paper: +4).
    let rescued = points
        .iter()
        .filter(|p| {
            p.full_peak_bytes.is_none() && p.windowed.iter().any(|w| w.peak_bytes.is_some())
        })
        .count();
    println!("Datasets OOM in full BFS but solved with windowing: {rescued} (paper: 4)");

    save_json(
        &env,
        "fig6_window_memory",
        &Record {
            points,
            mean_reduction_pct,
            geomean_speedup_vs_full: geomean_speedup,
        },
    );
}
