//! Fused vs unfused expansion pipeline — the headline perf ablation.
//!
//! The fused pipeline makes the count kernel record a per-entry adjacency
//! bitmask that the output kernel replays, so each level walks the edge
//! oracle once instead of twice, scans in a single pass, and recycles its
//! scratch through the level arena. The unfused baseline is the
//! paper-literal count → scan → re-walk pipeline
//! (`SolverConfig { fused: false, .. }`).
//!
//! Two modes:
//!
//! * Default: harness timings (`expand/fused/<dataset>` vs
//!   `expand/unfused/<dataset>`) on representative smoke datasets, followed
//!   by an oracle-query sweep over the whole smoke corpus. The sweep is
//!   saved as a JSON record (`fused_expand.json`).
//! * `GMC_PERF_GATE=1`: CI gate. Noise-hardened paired timings (see
//!   [`paired_min_ms`]) make the process exit non-zero if the fused
//!   pipeline is more than 5% slower than the unfused baseline on any gate
//!   instance, or if it saves less than 40% of oracle queries across the
//!   smoke corpus.

use std::process::ExitCode;
use std::time::Instant;

use gmc_bench::harness::Harness;
use gmc_bench::{impl_to_json, print_table, save_json, BenchEnv};
use gmc_corpus::{corpus, Tier};
use gmc_dpp::Device;
use gmc_graph::Csr;
use gmc_mce::MaxCliqueSolver;

/// Timing datasets: one per corpus category plus a dense generator graph
/// with several expansion levels (matching `micro_solver`'s selection).
const TIMED: &[&str] = &[
    "road-grid-02",
    "ca-papers-03",
    "socfb-campus-04",
    "web-crawl-03",
];

fn dataset(name: &str) -> Csr {
    gmc_corpus::by_name(Tier::Smoke, name)
        .unwrap_or_else(|| panic!("dataset {name}"))
        .load()
}

fn solver(fused: bool) -> MaxCliqueSolver {
    MaxCliqueSolver::new(Device::unlimited()).fused(fused)
}

struct FusedRow {
    dataset: String,
    fused_queries: u64,
    unfused_queries: u64,
    query_reduction_pct: f64,
    fused_launches: u64,
    unfused_launches: u64,
}

impl_to_json!(FusedRow {
    dataset,
    fused_queries,
    unfused_queries,
    query_reduction_pct,
    fused_launches,
    unfused_launches
});

/// One solve per configuration over the whole smoke corpus: oracle queries
/// and launch counts are deterministic, so no repetition is needed.
fn query_sweep() -> Vec<FusedRow> {
    corpus(Tier::Smoke)
        .iter()
        .map(|spec| {
            let graph = spec.load();
            let f = solver(true).solve(&graph).expect("unlimited device");
            let u = solver(false).solve(&graph).expect("unlimited device");
            assert_eq!(f.clique_number, u.clique_number, "{}", spec.name);
            let reduction = if u.stats.oracle_queries == 0 {
                0.0
            } else {
                100.0 * (1.0 - f.stats.oracle_queries as f64 / u.stats.oracle_queries as f64)
            };
            FusedRow {
                dataset: spec.name.to_string(),
                fused_queries: f.stats.oracle_queries,
                unfused_queries: u.stats.oracle_queries,
                query_reduction_pct: reduction,
                fused_launches: f.stats.launches.launches,
                unfused_launches: u.stats.launches.launches,
            }
        })
        .collect()
}

fn print_sweep(rows: &[FusedRow]) {
    println!("\n-- Oracle queries per solve: fused records+replays, unfused re-walks --");
    print_table(
        &[
            "Dataset",
            "Fused queries",
            "Unfused queries",
            "Saved %",
            "Fused launches",
            "Unfused launches",
        ],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.dataset.clone(),
                    r.fused_queries.to_string(),
                    r.unfused_queries.to_string(),
                    format!("{:.1}", r.query_reduction_pct),
                    r.fused_launches.to_string(),
                    r.unfused_launches.to_string(),
                ]
            })
            .collect::<Vec<_>>(),
    );
}

fn bench() {
    let mut harness = Harness::from_args();
    let mut group = harness.group("expand");
    for name in TIMED {
        let graph = dataset(name);
        for fused in [true, false] {
            let label = if fused { "fused" } else { "unfused" };
            group.bench(&format!("{label}/{name}"), |b| {
                let s = solver(fused);
                b.iter(|| s.solve(&graph).unwrap());
            });
        }
    }
    // A denser instance exercising multiple expansion levels, where the
    // count/output redundancy dominates.
    let dense = gmc_graph::generators::gnp(400, 0.15, 99);
    for fused in [true, false] {
        let label = if fused { "fused" } else { "unfused" };
        group.bench(&format!("{label}/gnp_400_dense"), |b| {
            let s = solver(fused);
            b.iter(|| s.solve(&dense).unwrap());
        });
    }
    group.finish();

    let rows = query_sweep();
    print_sweep(&rows);
    save_json(&BenchEnv::from_env(), "fused_expand", rows.as_slice());
    harness.finish();
}

/// Paired per-iteration milliseconds `(fused, unfused)`, noise-hardened
/// three ways: iterations are batched so every sample spans at least ~20 ms
/// of wall time (sub-millisecond solves would otherwise be pure scheduler
/// noise), the two pipelines' batches are interleaved so both sides see the
/// same warmup state and load drift, and the *minimum* over `samples`
/// batches per side is reported — the most repeatable statistic for a
/// deterministic workload.
fn paired_min_ms(samples: usize, graph: &Csr) -> (f64, f64) {
    let run = |fused: bool| {
        solver(fused).solve(graph).unwrap();
    };
    let start = Instant::now();
    run(true);
    run(false); // warmup both sides + calibration probe
    let per_iter = (start.elapsed().as_secs_f64() / 2.0).max(1e-9);
    let iters = ((0.020 / per_iter).ceil() as usize).clamp(1, 100_000);
    // One untimed full-batch round so the timed rounds start from an
    // identically warm pool/cache state on both sides.
    for _ in 0..2 * iters {
        run(true);
    }
    let mut best = [f64::INFINITY; 2];
    for _ in 0..samples.max(1) {
        for (slot, fused) in [(0, true), (1, false)] {
            let start = Instant::now();
            for _ in 0..iters {
                run(fused);
            }
            best[slot] = best[slot].min(start.elapsed().as_secs_f64() * 1e3 / iters as f64);
        }
    }
    (best[0], best[1])
}

fn gate() -> ExitCode {
    let samples: usize = std::env::var("GMC_BENCH_SAMPLES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(5);
    let mut failed = false;

    println!("-- Perf gate: fused must not be >5% slower than unfused --");
    let mut graphs: Vec<(String, Csr)> =
        TIMED.iter().map(|n| (n.to_string(), dataset(n))).collect();
    graphs.push((
        "gnp_400_dense".into(),
        gmc_graph::generators::gnp(400, 0.15, 99),
    ));
    for (name, graph) in &graphs {
        let (fused_ms, unfused_ms) = paired_min_ms(samples, graph);
        let ok = fused_ms <= unfused_ms * 1.05;
        println!(
            "{name:<24} fused {fused_ms:>8.3} ms  unfused {unfused_ms:>8.3} ms  {}",
            if ok { "ok" } else { "FAIL" }
        );
        failed |= !ok;
    }

    let rows = query_sweep();
    print_sweep(&rows);
    let (f_total, u_total) = rows.iter().fold((0u64, 0u64), |(f, u), r| {
        (f + r.fused_queries, u + r.unfused_queries)
    });
    let saved = 100.0 * (1.0 - f_total as f64 / u_total as f64);
    let queries_ok = f_total * 10 <= u_total * 6;
    println!(
        "\nsmoke-corpus oracle queries: fused {f_total}, unfused {u_total} ({saved:.1}% saved, \
         gate ≥40%) {}",
        if queries_ok { "ok" } else { "FAIL" }
    );
    failed |= !queries_ok;

    if failed {
        eprintln!("perf gate FAILED");
        ExitCode::FAILURE
    } else {
        println!("perf gate passed");
        ExitCode::SUCCESS
    }
}

fn main() -> ExitCode {
    if std::env::var("GMC_PERF_GATE").as_deref() == Ok("1") {
        gate()
    } else {
        bench();
        ExitCode::SUCCESS
    }
}
