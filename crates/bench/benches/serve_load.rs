//! Service-layer benchmark: the deterministic two-phase load generator
//! driven over smoke-corpus graphs, recorded as `serve.json`.
//!
//! The populate phase submits each dataset once (guaranteed cache misses,
//! checked bit-for-bit against a standalone `solve()`), the replay phase
//! draws seeded repeats over the same keys (guaranteed hits), and two
//! past-deadline sentinel jobs exercise cooperative cancellation. Every
//! counter in the record except the wall-clock fields is a pure function
//! of the workload constants below — independent of pool interleaving and
//! machine speed — so `tests/bench_trend.rs` re-runs the generator at a
//! *different* pool size and requires the counters to match exactly.

use gmc_bench::{impl_to_json, save_json, BenchEnv};
use gmc_corpus::{by_name, Tier};
use gmc_serve::{loadgen, ServeConfig, SolveService};
use std::sync::Arc;
use std::time::Instant;

/// Smoke datasets served as unique jobs — the same per-category
/// representatives the counter trend gate spot-checks.
pub const SERVE_DATASETS: &[&str] = &[
    "road-grid-02",
    "ca-papers-03",
    "socfb-campus-04",
    "web-crawl-03",
];

/// Replay draws over the unique jobs; with 4 uniques + 2 sentinels this
/// fixes the hit rate at 8/14 ≈ 0.571.
pub const REPEATS: usize = 8;

/// Past-deadline sentinel jobs (generated graphs, distinct from corpus).
pub const DEADLINE_JOBS: usize = 2;

/// Master workload seed (drives the replay draw).
pub const SEED: u64 = 2024;

/// Executor slots in the benchmarked service.
pub const POOL: usize = 2;

/// Bounded queue depth.
pub const QUEUE_DEPTH: usize = 8;

struct ServeRecord {
    pool: u64,
    queue_depth: u64,
    total_jobs: u64,
    unique_jobs: u64,
    repeat_jobs: u64,
    deadline_jobs: u64,
    cache_hits: u64,
    cache_misses: u64,
    hit_rate: f64,
    cancellations: u64,
    bit_identical: bool,
    launches: u64,
    oracle_queries: u64,
    queue_wait_p50_ns: u64,
    queue_wait_p99_ns: u64,
    wall_ms: f64,
    throughput_jobs_per_s: f64,
}

impl_to_json!(ServeRecord {
    pool,
    queue_depth,
    total_jobs,
    unique_jobs,
    repeat_jobs,
    deadline_jobs,
    cache_hits,
    cache_misses,
    hit_rate,
    cancellations,
    bit_identical,
    launches,
    oracle_queries,
    queue_wait_p50_ns,
    queue_wait_p99_ns,
    wall_ms,
    throughput_jobs_per_s
});

/// The workload graphs: smoke-corpus uniques plus generated sentinels
/// (distinct from every corpus graph, so sentinels never hit the cache).
pub fn workload() -> (Vec<Arc<gmc_graph::Csr>>, Vec<Arc<gmc_graph::Csr>>) {
    let uniques = SERVE_DATASETS
        .iter()
        .map(|name| {
            Arc::new(
                by_name(Tier::Smoke, name)
                    .unwrap_or_else(|| panic!("smoke dataset {name}"))
                    .load(),
            )
        })
        .collect();
    let sentinels = (0..DEADLINE_JOBS)
        .map(|i| Arc::new(gmc_graph::generators::gnp(150, 0.12, SEED + i as u64)))
        .collect();
    (uniques, sentinels)
}

fn main() {
    let env = BenchEnv::from_env();
    let (uniques, sentinels) = workload();
    let service = SolveService::start(ServeConfig::default().pool(POOL).queue_depth(QUEUE_DEPTH));
    let started = Instant::now();
    let report = loadgen::run_with_graphs(&service, &uniques, &sentinels, REPEATS, SEED);
    let wall = started.elapsed();
    let stats = service.shutdown();
    assert!(
        report.bit_identical,
        "a served result diverged from the standalone solve"
    );

    let record = ServeRecord {
        pool: POOL as u64,
        queue_depth: QUEUE_DEPTH as u64,
        total_jobs: report.total_jobs,
        unique_jobs: report.unique_jobs,
        repeat_jobs: report.repeat_jobs,
        deadline_jobs: report.deadline_jobs,
        cache_hits: report.cache_hits,
        cache_misses: report.cache_misses,
        hit_rate: report.hit_rate(),
        cancellations: report.cancellations,
        bit_identical: report.bit_identical,
        launches: stats.launches,
        oracle_queries: stats.oracle_queries,
        queue_wait_p50_ns: stats.queue_wait_ns(0.5),
        queue_wait_p99_ns: stats.queue_wait_ns(0.99),
        wall_ms: wall.as_secs_f64() * 1e3,
        throughput_jobs_per_s: stats.throughput(wall),
    };
    println!(
        "served {} jobs ({} hits / {} misses, hit rate {:.0}%, {} cancelled) in {:.1} ms",
        record.total_jobs,
        record.cache_hits,
        record.cache_misses,
        100.0 * record.hit_rate,
        record.cancellations,
        record.wall_ms,
    );
    println!(
        "clique numbers per dataset: {:?}; {} launches, {} oracle queries",
        report.clique_numbers, record.launches, record.oracle_queries,
    );
    save_json(&env, "serve", &record);
}
