//! §II-C quantified: lane utilisation of the three GPU strategies.
//!
//! The paper's central architectural argument is qualitative: depth-first
//! traversals map poorly onto SIMT hardware (fine-grained → divergence and
//! load imbalance; coarse-grained → not enough work per warp), while the
//! iterative breadth-first formulation "matches the parallelism to the
//! problem size at each stage". This bench runs all three under the same
//! 32-lane lockstep accounting and prints the utilisation each achieves on
//! every corpus dataset — the numbers behind the paper's Section II-C.

use gmc_bench::impl_to_json;
use gmc_bench::{load_corpus, print_table, run_solver, save_json, BenchEnv, RunOutcome};
use gmc_mce::SolverConfig;
use gmc_pmc::simt;

struct UtilizationRow {
    dataset: String,
    category: String,
    avg_degree: f64,
    bfs_utilization: Option<f64>,
    warp_dfs_utilization: f64,
    thread_dfs_utilization: f64,
}

impl_to_json!(UtilizationRow {
    dataset,
    category,
    avg_degree,
    bfs_utilization,
    warp_dfs_utilization,
    thread_dfs_utilization
});

fn main() {
    let env = BenchEnv::from_env();
    env.banner("Warp divergence: lane utilisation of BFS vs warp-DFS vs thread-DFS");
    let datasets = load_corpus(&env);

    let mut rows = Vec::new();
    for dataset in &datasets {
        // Breadth-first utilisation from the actual level sizes of a run
        // (unlimited memory so every dataset yields a full level profile).
        let device = env.unlimited_device();
        let bfs = run_solver(&device, &dataset.graph, SolverConfig::default()).expect("runs");
        let bfs_utilization = match &bfs {
            RunOutcome::Solved(_) => {
                let solver = gmc_mce::MaxCliqueSolver::new(env.unlimited_device());
                let result = solver.solve(&dataset.graph).expect("unlimited");
                Some(simt::breadth_first_utilization(&result.stats.level_entries).utilization)
            }
            RunOutcome::Oom => None,
        };
        let warp = simt::warp_parallel_dfs(&dataset.graph);
        let thread = simt::thread_parallel_dfs(&dataset.graph);
        // All three must agree on ω.
        assert_eq!(
            warp.clique_number,
            thread.clique_number,
            "{}",
            dataset.name()
        );
        rows.push(UtilizationRow {
            dataset: dataset.name().to_string(),
            category: dataset.spec.category.to_string(),
            avg_degree: dataset.avg_degree(),
            bfs_utilization,
            warp_dfs_utilization: warp.report.utilization,
            thread_dfs_utilization: thread.report.utilization,
        });
    }

    rows.sort_by(|a, b| a.avg_degree.total_cmp(&b.avg_degree));
    print_table(
        &[
            "Dataset",
            "avg_deg",
            "BFS util",
            "Warp-DFS util",
            "Thread-DFS util",
        ],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.dataset.clone(),
                    format!("{:.1}", r.avg_degree),
                    r.bfs_utilization
                        .map_or("OOM".into(), |u| format!("{:.1}%", 100.0 * u)),
                    format!("{:.1}%", 100.0 * r.warp_dfs_utilization),
                    format!("{:.1}%", 100.0 * r.thread_dfs_utilization),
                ]
            })
            .collect::<Vec<_>>(),
    );

    let mean = |f: &dyn Fn(&UtilizationRow) -> Option<f64>| {
        let values: Vec<f64> = rows.iter().filter_map(f).collect();
        values.iter().sum::<f64>() / values.len().max(1) as f64
    };
    println!("\nMean lane utilisation across the corpus:");
    println!(
        "  breadth-first (paper's choice): {:.1}%",
        100.0 * mean(&|r| r.bfs_utilization)
    );
    println!(
        "  warp-parallel DFS (§II-C rejected): {:.1}%",
        100.0 * mean(&|r| Some(r.warp_dfs_utilization))
    );
    println!(
        "  thread-parallel DFS (§II-C rejected): {:.1}%",
        100.0 * mean(&|r| Some(r.thread_dfs_utilization))
    );

    save_json(&env, "warp_divergence", &rows);
}
