//! Ablations of the design choices DESIGN.md calls out:
//!
//! 1. Orientation by degree vs. index (§IV-C: degree orientation shortens
//!    sublists and improves the length cut).
//! 2. Candidate ordering within sublists: index vs. ascending degree
//!    (§IV-C final step: degree ordering moves missing-edge lookups earlier).
//! 3. Window source ordering: index / ascending / descending degree /
//!    random (§V-C1: descending costs the most memory; ascending ≈ random).
//! 4. Early exit on/off (Algorithm 2 line 36).
//! 5. Edge-membership structure: CSR binary search vs bitset matrix vs
//!    edge hash table (§III-3's three-way comparison).
//! 6. Multi-run heuristic seed count h.
//! 7. Sublist bound: length (the paper's) vs greedy colouring (§II-B3's
//!    tighter alternative).
//! 8. Fused vs unfused expansion pipeline (record-and-replay bitmasks,
//!    bound-directed count walk, single-pass scan, arena scratch — vs the
//!    paper-literal count → scan → re-walk baseline).
//! 9. Sublist-local bitmaps off / auto / on: the word-parallel tail
//!    intersection's probe savings vs its CSR build cost on the fused
//!    pipeline.
//!
//! A representative cross-category slice of the corpus keeps the runtime
//! manageable.

use gmc_bench::impl_to_json;
use gmc_bench::{load_corpus, print_table, run_solver, save_json, BenchEnv, RunOutcome};
use gmc_heuristic::HeuristicKind;
use gmc_mce::{
    CandidateOrder, EdgeIndexKind, LocalBitsMode, OrientationRule, SolverConfig, SublistBound,
    WindowConfig, WindowOrdering,
};

struct AblationRecord {
    orientation: Vec<OrientationRow>,
    candidate_order: Vec<TimingRow>,
    window_ordering: Vec<WindowOrderRow>,
    early_exit: Vec<TimingRow>,
    edge_index: Vec<EdgeIndexRow>,
    fused_pipeline: Vec<FusedRow>,
    local_bits: Vec<LocalBitsRow>,
}

impl_to_json!(AblationRecord {
    orientation,
    candidate_order,
    window_ordering,
    early_exit,
    edge_index,
    fused_pipeline,
    local_bits
});

struct LocalBitsRow {
    dataset: String,
    mode: String,
    ms: Option<f64>,
    queries: Option<u64>,
    probes_avoided: Option<u64>,
    rows_built: Option<u64>,
}

impl_to_json!(LocalBitsRow {
    dataset,
    mode,
    ms,
    queries,
    probes_avoided,
    rows_built
});

struct FusedRow {
    dataset: String,
    fused_ms: Option<f64>,
    unfused_ms: Option<f64>,
    fused_queries: Option<u64>,
    unfused_queries: Option<u64>,
}

impl_to_json!(FusedRow {
    dataset,
    fused_ms,
    unfused_ms,
    fused_queries,
    unfused_queries
});

struct EdgeIndexRow {
    dataset: String,
    kind: String,
    ms: Option<f64>,
    footprint_bytes: usize,
}

impl_to_json!(EdgeIndexRow {
    dataset,
    kind,
    ms,
    footprint_bytes
});

struct OrientationRow {
    dataset: String,
    degree_entries: usize,
    index_entries: usize,
    degree_ms: Option<f64>,
    index_ms: Option<f64>,
}

impl_to_json!(OrientationRow {
    dataset,
    degree_entries,
    index_entries,
    degree_ms,
    index_ms
});

struct TimingRow {
    dataset: String,
    variant_a: String,
    a_ms: Option<f64>,
    variant_b: String,
    b_ms: Option<f64>,
}

impl_to_json!(TimingRow {
    dataset,
    variant_a,
    a_ms,
    variant_b,
    b_ms
});

struct WindowOrderRow {
    dataset: String,
    ordering: String,
    peak_window_bytes: Option<usize>,
    ms: Option<f64>,
}

impl_to_json!(WindowOrderRow {
    dataset,
    ordering,
    peak_window_bytes,
    ms
});

fn main() {
    let env = BenchEnv::from_env();
    env.banner("Ablations: orientation, candidate order, window ordering, early exit");
    let all = load_corpus(&env);
    // Every 5th dataset gives a 12-dataset slice covering all categories.
    let slice: Vec<_> = all.into_iter().step_by(5).collect();

    // 1. Orientation rule.
    let mut orientation_rows = Vec::new();
    for d in &slice {
        let run = |rule: OrientationRule| {
            let device = env.device();
            let cfg = SolverConfig {
                heuristic: HeuristicKind::MultiDegree,
                orientation: rule,
                ..SolverConfig::default()
            };
            let (lb, setup) =
                gmc_mce::preview_setup(&env.unlimited_device(), &d.graph, &cfg).expect("preview");
            let _ = lb;
            let ms = match run_solver(&device, &d.graph, cfg).expect("runs") {
                RunOutcome::Solved(r) => Some(r.total_ms),
                RunOutcome::Oom => None,
            };
            (setup.initial_entries, ms)
        };
        let (degree_entries, degree_ms) = run(OrientationRule::Degree);
        let (index_entries, index_ms) = run(OrientationRule::Index);
        orientation_rows.push(OrientationRow {
            dataset: d.name().to_string(),
            degree_entries,
            index_entries,
            degree_ms,
            index_ms,
        });
    }
    println!("\n-- Orientation: degree vs index (surviving 2-clique entries) --");
    print_table(
        &[
            "Dataset",
            "Degree entries",
            "Index entries",
            "Degree ms",
            "Index ms",
        ],
        &orientation_rows
            .iter()
            .map(|r| {
                vec![
                    r.dataset.clone(),
                    r.degree_entries.to_string(),
                    r.index_entries.to_string(),
                    fmt_ms(r.degree_ms),
                    fmt_ms(r.index_ms),
                ]
            })
            .collect::<Vec<_>>(),
    );

    // 2. Candidate ordering.
    let mut candidate_rows = Vec::new();
    for d in &slice {
        let time_with = |order: CandidateOrder| {
            let device = env.device();
            match run_solver(
                &device,
                &d.graph,
                SolverConfig {
                    heuristic: HeuristicKind::MultiDegree,
                    candidate_order: order,
                    ..SolverConfig::default()
                },
            )
            .expect("runs")
            {
                RunOutcome::Solved(r) => Some(r.total_ms),
                RunOutcome::Oom => None,
            }
        };
        candidate_rows.push(TimingRow {
            dataset: d.name().to_string(),
            variant_a: "degree-ascending".into(),
            a_ms: time_with(CandidateOrder::DegreeAscending),
            variant_b: "index".into(),
            b_ms: time_with(CandidateOrder::Index),
        });
    }
    println!("\n-- Candidate ordering within sublists --");
    print_timing(&candidate_rows);

    // 3. Window source ordering: memory is the paper's metric here.
    let mut window_rows = Vec::new();
    for d in &slice {
        for (name, ordering) in [
            ("index", WindowOrdering::Index),
            ("asc-degree", WindowOrdering::DegreeAscending),
            ("desc-degree", WindowOrdering::DegreeDescending),
            ("random", WindowOrdering::Random(7)),
        ] {
            let device = env.device();
            let outcome = run_solver(
                &device,
                &d.graph,
                SolverConfig {
                    heuristic: HeuristicKind::MultiDegree,
                    window: Some(WindowConfig {
                        size: 1024,
                        ordering,
                        enumerate_all: false,
                        ..WindowConfig::default()
                    }),
                    ..SolverConfig::default()
                },
            )
            .expect("runs");
            let (peak, ms) = match outcome {
                RunOutcome::Solved(r) => (Some(r.peak_bytes), Some(r.total_ms)),
                RunOutcome::Oom => (None, None),
            };
            window_rows.push(WindowOrderRow {
                dataset: d.name().to_string(),
                ordering: name.to_string(),
                peak_window_bytes: peak,
                ms,
            });
        }
    }
    println!("\n-- Window source ordering (peak bytes; paper: descending uses most) --");
    print_table(
        &["Dataset", "Ordering", "Peak bytes", "ms"],
        &window_rows
            .iter()
            .map(|r| {
                vec![
                    r.dataset.clone(),
                    r.ordering.clone(),
                    r.peak_window_bytes.map_or("OOM".into(), |b| b.to_string()),
                    fmt_ms(r.ms),
                ]
            })
            .collect::<Vec<_>>(),
    );

    // 4. Early exit.
    let mut early_rows = Vec::new();
    for d in &slice {
        let time_with = |enabled: bool| {
            let device = env.device();
            match run_solver(
                &device,
                &d.graph,
                SolverConfig {
                    heuristic: HeuristicKind::MultiDegree,
                    early_exit: enabled,
                    ..SolverConfig::default()
                },
            )
            .expect("runs")
            {
                RunOutcome::Solved(r) => Some(r.total_ms),
                RunOutcome::Oom => None,
            }
        };
        early_rows.push(TimingRow {
            dataset: d.name().to_string(),
            variant_a: "early-exit".into(),
            a_ms: time_with(true),
            variant_b: "run-to-empty".into(),
            b_ms: time_with(false),
        });
    }
    println!("\n-- Early exit (Algorithm 2 line 36) --");
    print_timing(&early_rows);

    // 5. Edge-membership structure (paper §III-3): lookup speed vs space.
    let mut edge_index_rows = Vec::new();
    for d in &slice {
        for (name, kind) in [
            ("binary-search", EdgeIndexKind::BinarySearch),
            ("bitset", EdgeIndexKind::Bitset),
            ("hash", EdgeIndexKind::Hash),
        ] {
            use gmc_graph::EdgeOracle;
            let footprint = match kind {
                EdgeIndexKind::Bitset => {
                    gmc_graph::BitMatrix::footprint_for(d.graph.num_vertices())
                }
                EdgeIndexKind::Hash => gmc_graph::HashAdjacency::footprint_for(d.graph.num_edges()),
                _ => d.graph.footprint_bytes(),
            };
            let device = env.device();
            let ms = match run_solver(
                &device,
                &d.graph,
                SolverConfig {
                    heuristic: HeuristicKind::MultiDegree,
                    edge_index: kind,
                    ..SolverConfig::default()
                },
            )
            .expect("runs")
            {
                RunOutcome::Solved(r) => Some(r.total_ms),
                RunOutcome::Oom => None,
            };
            edge_index_rows.push(EdgeIndexRow {
                dataset: d.name().to_string(),
                kind: name.to_string(),
                ms,
                footprint_bytes: footprint,
            });
        }
    }
    // 6. Multi-run seed count h (the paper fixes h = |V|; this sweep shows
    // the accuracy/cost curve that choice sits on).
    let mut seed_rows: Vec<Vec<String>> = Vec::new();
    for d in slice.iter().step_by(3) {
        let n = d.graph.num_vertices();
        for h in [1usize, 16, 256, n] {
            let device = env.unlimited_device();
            let result = gmc_heuristic::run_heuristic(
                &device,
                &d.graph,
                HeuristicKind::MultiDegree,
                Some(h),
            )
            .expect("unlimited device");
            seed_rows.push(vec![
                d.name().to_string(),
                if h == n {
                    format!("{h} (=|V|)")
                } else {
                    h.to_string()
                },
                result.lower_bound().to_string(),
                format!("{:.2}", result.total_time.as_secs_f64() * 1e3),
            ]);
        }
    }
    println!("\n-- Multi-run heuristic seed count h (paper fixes h = |V|) --");
    print_table(&["Dataset", "h", "ω̄", "ms"], &seed_rows);

    println!("\n-- Edge-membership structure (paper §III-3): time vs space --");
    print_table(
        &["Dataset", "Structure", "ms", "Footprint bytes"],
        &edge_index_rows
            .iter()
            .map(|r| {
                vec![
                    r.dataset.clone(),
                    r.kind.clone(),
                    fmt_ms(r.ms),
                    r.footprint_bytes.to_string(),
                ]
            })
            .collect::<Vec<_>>(),
    );

    // 7. Sublist bound: length vs colouring (pruned entries and time).
    let mut bound_rows: Vec<Vec<String>> = Vec::new();
    for d in slice.iter().step_by(2) {
        for (name, bound) in [
            ("length", SublistBound::Length),
            ("coloring", SublistBound::Coloring),
        ] {
            let cfg = SolverConfig {
                heuristic: HeuristicKind::MultiDegree,
                sublist_bound: bound,
                ..SolverConfig::default()
            };
            let (_, setup) =
                gmc_mce::preview_setup(&env.unlimited_device(), &d.graph, &cfg).expect("preview");
            let device = env.device();
            let ms = match run_solver(&device, &d.graph, cfg).expect("runs") {
                RunOutcome::Solved(r) => Some(r.total_ms),
                RunOutcome::Oom => None,
            };
            bound_rows.push(vec![
                d.name().to_string(),
                name.to_string(),
                setup.initial_entries.to_string(),
                fmt_ms(ms),
            ]);
        }
    }
    println!("\n-- Sublist bound: length vs greedy colouring (§II-B3) --");
    print_table(&["Dataset", "Bound", "Entries kept", "ms"], &bound_rows);

    // 8. Fused vs unfused expansion pipeline: wall time plus the query
    // counter that proves where the win comes from.
    let mut fused_rows = Vec::new();
    for d in &slice {
        let run = |fused: bool| {
            let device = env.device();
            match run_solver(
                &device,
                &d.graph,
                SolverConfig {
                    heuristic: HeuristicKind::MultiDegree,
                    fused,
                    ..SolverConfig::default()
                },
            )
            .expect("runs")
            {
                RunOutcome::Solved(r) => (Some(r.total_ms), Some(r.oracle_queries)),
                RunOutcome::Oom => (None, None),
            }
        };
        let (fused_ms, fused_queries) = run(true);
        let (unfused_ms, unfused_queries) = run(false);
        fused_rows.push(FusedRow {
            dataset: d.name().to_string(),
            fused_ms,
            unfused_ms,
            fused_queries,
            unfused_queries,
        });
    }
    println!("\n-- Expansion pipeline: fused (record/replay + bound-directed walk) vs unfused --");
    print_table(
        &[
            "Dataset",
            "Fused ms",
            "Unfused ms",
            "Fused queries",
            "Unfused queries",
        ],
        &fused_rows
            .iter()
            .map(|r| {
                vec![
                    r.dataset.clone(),
                    fmt_ms(r.fused_ms),
                    fmt_ms(r.unfused_ms),
                    r.fused_queries.map_or("OOM".into(), |q| q.to_string()),
                    r.unfused_queries.map_or("OOM".into(), |q| q.to_string()),
                ]
            })
            .collect::<Vec<_>>(),
    );

    // 9. Sublist-local bitmaps: probe savings vs build cost on the fused
    // pipeline (word-parallel tail intersection, DESIGN.md §III-3).
    let mut local_bits_rows = Vec::new();
    for d in &slice {
        for (name, mode) in [
            ("off", LocalBitsMode::Off),
            ("auto", LocalBitsMode::Auto),
            ("on", LocalBitsMode::On),
        ] {
            let device = env.device();
            let outcome = run_solver(
                &device,
                &d.graph,
                SolverConfig {
                    heuristic: HeuristicKind::MultiDegree,
                    fused: true,
                    local_bits: mode,
                    ..SolverConfig::default()
                },
            )
            .expect("runs");
            let (ms, queries, probes_avoided, rows_built) = match outcome {
                RunOutcome::Solved(r) => (
                    Some(r.total_ms),
                    Some(r.oracle_queries),
                    Some(r.bitmap_probes_avoided),
                    Some(r.bitmap_rows),
                ),
                RunOutcome::Oom => (None, None, None, None),
            };
            local_bits_rows.push(LocalBitsRow {
                dataset: d.name().to_string(),
                mode: name.to_string(),
                ms,
                queries,
                probes_avoided,
                rows_built,
            });
        }
    }
    println!("\n-- Sublist-local bitmaps: off / auto / on (word-parallel tails) --");
    print_table(
        &["Dataset", "Mode", "ms", "Queries", "Avoided", "Rows"],
        &local_bits_rows
            .iter()
            .map(|r| {
                vec![
                    r.dataset.clone(),
                    r.mode.clone(),
                    fmt_ms(r.ms),
                    r.queries.map_or("OOM".into(), |q| q.to_string()),
                    r.probes_avoided.map_or("OOM".into(), |q| q.to_string()),
                    r.rows_built.map_or("OOM".into(), |q| q.to_string()),
                ]
            })
            .collect::<Vec<_>>(),
    );

    save_json(
        &env,
        "ablations",
        &AblationRecord {
            orientation: orientation_rows,
            candidate_order: candidate_rows,
            window_ordering: window_rows,
            early_exit: early_rows,
            edge_index: edge_index_rows,
            fused_pipeline: fused_rows,
            local_bits: local_bits_rows,
        },
    );
}

fn fmt_ms(ms: Option<f64>) -> String {
    ms.map_or("OOM".into(), |m| format!("{m:.1}"))
}

fn print_timing(rows: &[TimingRow]) {
    print_table(
        &["Dataset", "A", "A ms", "B", "B ms"],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.dataset.clone(),
                    r.variant_a.clone(),
                    fmt_ms(r.a_ms),
                    r.variant_b.clone(),
                    fmt_ms(r.b_ms),
                ]
            })
            .collect::<Vec<_>>(),
    );
}
