//! Micro-benchmarks for the virtual-GPU primitives — the operations the
//! paper's kernels are composed of. Runs on the in-tree harness
//! (`gmc_bench::harness`): warmup, calibrated iteration counts,
//! median-of-k ns/op.

use gmc_bench::harness::Harness;
use gmc_dpp::Executor;
use gmc_graph::generators;

fn pseudo_random(n: usize, seed: u32) -> Vec<u32> {
    let mut state = seed | 1;
    (0..n)
        .map(|_| {
            state = state.wrapping_mul(1664525).wrapping_add(1013904223);
            state
        })
        .collect()
}

fn bench_scan(h: &mut Harness) {
    let exec = Executor::with_default_parallelism();
    let mut group = h.group("scan");
    for n in [10_000usize, 1_000_000] {
        let input: Vec<usize> = (0..n).map(|i| i % 13).collect();
        group.throughput_elements(n as u64);
        group.bench(&format!("exclusive/{n}"), |b| {
            b.iter(|| gmc_dpp::exclusive_scan(&exec, &input));
        });
    }
    group.finish();
}

fn bench_select(h: &mut Harness) {
    let exec = Executor::with_default_parallelism();
    let mut group = h.group("select");
    for n in [10_000usize, 1_000_000] {
        let input = pseudo_random(n, 3);
        group.throughput_elements(n as u64);
        group.bench(&format!("half/{n}"), |b| {
            b.iter(|| gmc_dpp::select_if(&exec, &input, |_, v| v & 1 == 0));
        });
    }
    group.finish();
}

fn bench_sort(h: &mut Harness) {
    let exec = Executor::with_default_parallelism();
    let mut group = h.group("radix_sort");
    for n in [10_000usize, 1_000_000] {
        let keys = pseudo_random(n, 5);
        let values: Vec<u32> = (0..n as u32).collect();
        group.throughput_elements(n as u64);
        group.bench(&format!("pairs/{n}"), |b| {
            b.iter(|| gmc_dpp::sort_pairs_u32(&exec, &keys, &values));
        });
        // Degree-like keys (small range) hit the constant-digit fast path.
        let degree_keys: Vec<u32> = keys.iter().map(|k| k % 256).collect();
        group.bench(&format!("degree_keys/{n}"), |b| {
            b.iter(|| gmc_dpp::sort_u32(&exec, &degree_keys));
        });
    }
    group.finish();
}

fn bench_segmented_max(h: &mut Harness) {
    let exec = Executor::with_default_parallelism();
    let n = 1_000_000usize;
    let values = pseudo_random(n, 7);
    let offsets: Vec<usize> = (0..=n / 100).map(|s| s * 100).collect();
    h.bench("segmented_argmax/10k_segments_of_100", |b| {
        b.iter(|| gmc_dpp::segmented_argmax_by_key(&exec, n, &offsets, |i| values[i]));
    });
}

fn bench_edge_lookup(h: &mut Harness) {
    // The solver's hot operation: binary-search edge membership (Algorithm 2
    // lines 5 & 19).
    let graph = generators::barabasi_albert(50_000, 8, 11);
    let queries = pseudo_random(100_000, 13);
    let n = graph.num_vertices() as u32;
    h.bench("has_edge/100k_lookups_ba_graph", |b| {
        b.iter(|| {
            let mut hits = 0u32;
            for pair in queries.chunks_exact(2) {
                if graph.has_edge(pair[0] % n, pair[1] % n) {
                    hits += 1;
                }
            }
            hits
        });
    });
}

fn bench_kcore(h: &mut Harness) {
    let exec = Executor::with_default_parallelism();
    let graph = generators::barabasi_albert(20_000, 6, 17);
    let mut group = h.group("kcore");
    group.bench("sequential_bz", |b| {
        b.iter(|| gmc_graph::kcore::core_numbers(&graph));
    });
    group.bench("data_parallel_peel", |b| {
        b.iter(|| gmc_graph::kcore::core_numbers_parallel(&exec, &graph));
    });
    group.finish();
}

fn bench_rle(h: &mut Harness) {
    let exec = Executor::with_default_parallelism();
    // Sublist-like input: runs of varying length.
    let values: Vec<u32> = (0..1_000_000).map(|i| (i / 37) as u32).collect();
    h.bench("run_length_encode/1m_values", |b| {
        b.iter(|| gmc_dpp::run_length_encode(&exec, &values));
    });
}

fn bench_histogram(h: &mut Harness) {
    let exec = Executor::with_default_parallelism();
    let data: Vec<u32> = pseudo_random(1_000_000, 19)
        .iter()
        .map(|v| v % 1000)
        .collect();
    h.bench("histogram/1m_values_1k_bins", |b| {
        b.iter(|| gmc_dpp::histogram_u32(&exec, &data, 1000));
    });
}

fn main() {
    let mut harness = Harness::from_args();
    bench_scan(&mut harness);
    bench_select(&mut harness);
    bench_sort(&mut harness);
    bench_segmented_max(&mut harness);
    bench_edge_lookup(&mut harness);
    bench_kcore(&mut harness);
    bench_rle(&mut harness);
    bench_histogram(&mut harness);
    harness.finish();
}
