//! Micro-benchmarks for the virtual-GPU primitives — the operations the
//! paper's kernels are composed of. Runs on the in-tree harness
//! (`gmc_bench::harness`): warmup, calibrated iteration counts,
//! median-of-k ns/op.
//!
//! `GMC_PERF_GATE=1` runs the overhead gates instead: a paired
//! traced-vs-untraced scan timing plus measurements of the disabled
//! fast-path costs, failing the process if disabled tracing costs more
//! than a few percent of a scan (see [`tracing_gate`]) or if the disabled
//! fault-injection check costs more than 1% (see [`fault_gate`]).

use gmc_bench::harness::Harness;
use gmc_dpp::Executor;
use gmc_graph::generators;
use gmc_trace::TraceSession;
use std::process::ExitCode;
use std::time::Instant;

fn pseudo_random(n: usize, seed: u32) -> Vec<u32> {
    let mut state = seed | 1;
    (0..n)
        .map(|_| {
            state = state.wrapping_mul(1664525).wrapping_add(1013904223);
            state
        })
        .collect()
}

fn bench_scan(h: &mut Harness) {
    let exec = Executor::with_default_parallelism();
    let mut group = h.group("scan");
    for n in [10_000usize, 1_000_000] {
        let input: Vec<usize> = (0..n).map(|i| i % 13).collect();
        group.throughput_elements(n as u64);
        group.bench(&format!("exclusive/{n}"), |b| {
            b.iter(|| gmc_dpp::exclusive_scan(&exec, &input));
        });
    }
    group.finish();
}

fn bench_select(h: &mut Harness) {
    let exec = Executor::with_default_parallelism();
    let mut group = h.group("select");
    for n in [10_000usize, 1_000_000] {
        let input = pseudo_random(n, 3);
        group.throughput_elements(n as u64);
        group.bench(&format!("half/{n}"), |b| {
            b.iter(|| gmc_dpp::select_if(&exec, &input, |_, v| v & 1 == 0));
        });
    }
    group.finish();
}

fn bench_sort(h: &mut Harness) {
    let exec = Executor::with_default_parallelism();
    let mut group = h.group("radix_sort");
    for n in [10_000usize, 1_000_000] {
        let keys = pseudo_random(n, 5);
        let values: Vec<u32> = (0..n as u32).collect();
        group.throughput_elements(n as u64);
        group.bench(&format!("pairs/{n}"), |b| {
            b.iter(|| gmc_dpp::sort_pairs_u32(&exec, &keys, &values));
        });
        // Degree-like keys (small range) hit the constant-digit fast path.
        let degree_keys: Vec<u32> = keys.iter().map(|k| k % 256).collect();
        group.bench(&format!("degree_keys/{n}"), |b| {
            b.iter(|| gmc_dpp::sort_u32(&exec, &degree_keys));
        });
    }
    group.finish();
}

fn bench_segmented_max(h: &mut Harness) {
    let exec = Executor::with_default_parallelism();
    let n = 1_000_000usize;
    let values = pseudo_random(n, 7);
    let offsets: Vec<usize> = (0..=n / 100).map(|s| s * 100).collect();
    h.bench("segmented_argmax/10k_segments_of_100", |b| {
        b.iter(|| gmc_dpp::segmented_argmax_by_key(&exec, n, &offsets, |i| values[i]));
    });
}

fn bench_edge_lookup(h: &mut Harness) {
    // The solver's hot operation: binary-search edge membership (Algorithm 2
    // lines 5 & 19).
    let graph = generators::barabasi_albert(50_000, 8, 11);
    let queries = pseudo_random(100_000, 13);
    let n = graph.num_vertices() as u32;
    h.bench("has_edge/100k_lookups_ba_graph", |b| {
        b.iter(|| {
            let mut hits = 0u32;
            for pair in queries.chunks_exact(2) {
                if graph.has_edge(pair[0] % n, pair[1] % n) {
                    hits += 1;
                }
            }
            hits
        });
    });
}

fn bench_kcore(h: &mut Harness) {
    let exec = Executor::with_default_parallelism();
    let graph = generators::barabasi_albert(20_000, 6, 17);
    let mut group = h.group("kcore");
    group.bench("sequential_bz", |b| {
        b.iter(|| gmc_graph::kcore::core_numbers(&graph));
    });
    group.bench("data_parallel_peel", |b| {
        b.iter(|| gmc_graph::kcore::core_numbers_parallel(&exec, &graph));
    });
    group.finish();
}

fn bench_rle(h: &mut Harness) {
    let exec = Executor::with_default_parallelism();
    // Sublist-like input: runs of varying length.
    let values: Vec<u32> = (0..1_000_000).map(|i| (i / 37) as u32).collect();
    h.bench("run_length_encode/1m_values", |b| {
        b.iter(|| gmc_dpp::run_length_encode(&exec, &values));
    });
}

fn bench_histogram(h: &mut Harness) {
    let exec = Executor::with_default_parallelism();
    let data: Vec<u32> = pseudo_random(1_000_000, 19)
        .iter()
        .map(|v| v % 1000)
        .collect();
    h.bench("histogram/1m_values_1k_bins", |b| {
        b.iter(|| gmc_dpp::histogram_u32(&exec, &data, 1000));
    });
}

fn bench_tracing(h: &mut Harness) {
    let n = 10_000usize;
    let input: Vec<usize> = (0..n).map(|i| i % 13).collect();
    let mut group = h.group("tracing");
    group.throughput_elements(n as u64);
    group.bench("scan_untraced/10000", |b| {
        let exec = Executor::with_default_parallelism();
        b.iter(|| gmc_dpp::exclusive_scan(&exec, &input));
    });
    group.bench("scan_traced/10000", |b| {
        // Recording into a live session; the ring overflows during a long
        // bench, which only bumps the dropped counter — record cost stays.
        let session = TraceSession::new();
        let exec = Executor::with_default_parallelism();
        exec.set_tracer(session.tracer());
        b.iter(|| gmc_dpp::exclusive_scan(&exec, &input));
    });
    group.finish();
}

/// Worker count for the gate: at least two, so the scan takes the pooled
/// launch path (and therefore the per-launch tracing check) even on a
/// single-core machine, where the inline path would record no launches.
fn gate_workers() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
        .max(2)
}

/// Paired per-iteration nanoseconds `(untraced, traced)` for the 10k scan.
/// Batches are interleaved and the minimum over `samples` batches per side
/// is reported, the most repeatable statistic for a deterministic workload.
fn paired_scan_ns(samples: usize, input: &[usize]) -> (f64, f64) {
    let untraced = Executor::new(gate_workers());
    let session = TraceSession::new();
    let traced = Executor::new(gate_workers());
    traced.set_tracer(session.tracer());

    let start = Instant::now();
    gmc_dpp::exclusive_scan(&untraced, input);
    gmc_dpp::exclusive_scan(&traced, input);
    let per_iter = (start.elapsed().as_secs_f64() / 2.0).max(1e-9);
    let iters = ((0.020 / per_iter).ceil() as usize).clamp(1, 1_000_000);
    for _ in 0..2 * iters {
        gmc_dpp::exclusive_scan(&untraced, input); // warm pool and caches
    }
    let mut best = [f64::INFINITY; 2];
    for _ in 0..samples.max(1) {
        for (slot, exec) in [(0, &untraced), (1, &traced)] {
            let start = Instant::now();
            for _ in 0..iters {
                gmc_dpp::exclusive_scan(exec, input);
            }
            best[slot] = best[slot].min(start.elapsed().as_secs_f64() * 1e9 / iters as f64);
        }
    }
    (best[0], best[1])
}

/// CI gate: disabled tracing must stay in the noise. Two checks:
///
/// 1. The disabled fast path (one relaxed atomic load + branch per launch,
///    measured directly) must account for under 3% of an untraced 10k scan.
/// 2. The untraced scan must not be slower than the recording scan beyond
///    noise — a broken enabled-check would show up here.
fn tracing_gate() -> bool {
    let samples: usize = gmc_trace::env::parse_or("GMC_BENCH_SAMPLES", 5);
    let n = 10_000usize;
    let input: Vec<usize> = (0..n).map(|i| i % 13).collect();
    let mut failed = false;

    println!("-- Tracing overhead gate: 10k exclusive scan --");
    let (untraced_ns, traced_ns) = paired_scan_ns(samples, &input);
    println!(
        "scan untraced {untraced_ns:>9.1} ns  traced {traced_ns:>9.1} ns  \
         (recording overhead {:+.1}%)",
        100.0 * (traced_ns - untraced_ns) / untraced_ns
    );
    let order_ok = untraced_ns <= traced_ns * 1.05;
    if !order_ok {
        eprintln!("FAIL: disabled tracing measured slower than recording");
    }
    failed |= !order_ok;

    // Launches per scan are deterministic; the disabled per-launch cost is
    // the executor's cached-flag check, measured in isolation.
    let exec = Executor::new(gate_workers());
    let before = exec.stats();
    gmc_dpp::exclusive_scan(&exec, &input);
    let launches = exec.stats().since(&before).launches;
    let check_iters = 10_000_000u64;
    let start = Instant::now();
    for _ in 0..check_iters {
        std::hint::black_box(exec.tracer().is_enabled());
    }
    let check_ns = start.elapsed().as_secs_f64() * 1e9 / check_iters as f64;
    let overhead_pct = 100.0 * (launches as f64 * check_ns) / untraced_ns;
    println!(
        "disabled fast path: {check_ns:.2} ns/launch × {launches} launches \
         = {overhead_pct:.3}% of the scan (gate < 3%)"
    );
    let budget_ok = overhead_pct < 3.0;
    if !budget_ok {
        eprintln!("FAIL: disabled-tracing overhead exceeds the budget");
    }
    failed |= !budget_ok;

    if failed {
        eprintln!("tracing gate FAILED");
    } else {
        println!("tracing gate passed");
    }
    !failed
}

/// CI gate: with no fault plan armed, the fault-injection hooks must stay
/// in the noise. Mirrors [`tracing_gate`]: the disabled path is one cached
/// relaxed load + branch per fallible launch (`Executor::fault_armed`) and
/// per memory charge, measured in isolation and required to account for
/// under 1% of a pooled 10k scan.
fn fault_gate() -> bool {
    let samples: usize = gmc_trace::env::parse_or("GMC_BENCH_SAMPLES", 5);
    let n = 10_000usize;
    let input: Vec<usize> = (0..n).map(|i| i % 13).collect();
    let mut failed = false;

    println!("\n-- Fault-injection overhead gate: 10k exclusive scan --");
    let (scan_ns, _) = paired_scan_ns(samples, &input);

    let exec = Executor::new(gate_workers());
    let before = exec.stats();
    gmc_dpp::try_exclusive_scan(&exec, &input).expect("no injector armed");
    let launches = exec.stats().since(&before).launches;
    let check_iters = 10_000_000u64;
    let start = Instant::now();
    for _ in 0..check_iters {
        std::hint::black_box(exec.fault_armed());
    }
    let check_ns = start.elapsed().as_secs_f64() * 1e9 / check_iters as f64;
    let overhead_pct = 100.0 * (launches as f64 * check_ns) / scan_ns;
    println!(
        "disabled fault path: {check_ns:.2} ns/launch × {launches} launches \
         = {overhead_pct:.3}% of the scan (gate < 1%)"
    );
    let budget_ok = overhead_pct < 1.0;
    if !budget_ok {
        eprintln!("FAIL: disabled fault-injection overhead exceeds the budget");
    }
    failed |= !budget_ok;

    if failed {
        eprintln!("fault gate FAILED");
    } else {
        println!("fault gate passed");
    }
    !failed
}

fn main() -> ExitCode {
    if std::env::var("GMC_PERF_GATE").as_deref() == Ok("1") {
        let tracing_ok = tracing_gate();
        let faults_ok = fault_gate();
        return if tracing_ok && faults_ok {
            ExitCode::SUCCESS
        } else {
            ExitCode::FAILURE
        };
    }
    let mut harness = Harness::from_args();
    bench_scan(&mut harness);
    bench_select(&mut harness);
    bench_sort(&mut harness);
    bench_segmented_max(&mut harness);
    bench_edge_lookup(&mut harness);
    bench_kcore(&mut harness);
    bench_rle(&mut harness);
    bench_histogram(&mut harness);
    bench_tracing(&mut harness);
    harness.finish();
    ExitCode::SUCCESS
}
