//! Cost-aware scheduling — morsel work-claiming vs static chunks.
//!
//! The executor's historical launch path cuts a grid into one contiguous
//! chunk per worker; a front-loaded grid then serialises most of the work
//! on worker 0. The dynamic schedules (`Schedule::Morsel`/`Guided`/`Auto`)
//! decompose the grid into worker-count-independent morsels claimed from a
//! shared cursor, and the weighted launches cut morsel boundaries at equal
//! summed cost. This bench measures both effects on adversarially skewed
//! grids where the per-item cost model is exact (the kernel burns work
//! proportional to the declared cost).
//!
//! Two modes:
//!
//! * Default: harness timings (`schedule/<grid>/<schedule>`) plus a sweep
//!   over grid shape × schedule saved as `schedule.json` (wall clock,
//!   speedup over static, morsel and balance counters).
//! * `GMC_PERF_GATE=1`: CI gate. On the front-loaded grid the morsel
//!   schedule must beat static chunking by ≥1.3×; on the uniform grid it
//!   must stay within 1.05× (claiming overhead in the noise); and with a
//!   dynamic schedule installed, launches on grids at or below the
//!   sequential-inline limit must keep the zero-overhead inline path —
//!   the added cost is gated at <1% of a pooled 10k exclusive scan.

use std::process::ExitCode;
use std::time::Instant;

use gmc_bench::{impl_to_json, print_table, save_json, BenchEnv};
use gmc_dpp::{Executor, Schedule};

/// Grid size: well past the sequential-inline limit, so every launch takes
/// the worker pool.
const GRID: usize = 8192;

/// Inline-path probe size: at or below the default sequential limit.
const INLINE_GRID: usize = 1024;

/// Spin iterations per declared cost unit (~tens of nanoseconds each).
const SPIN_PER_UNIT: u64 = 50;

/// Busy-work proportional to `units`, opaque to the optimiser.
fn burn(units: u64) {
    for i in 0..units * SPIN_PER_UNIT {
        std::hint::black_box(i);
    }
}

/// The benchmarked grid shapes, as per-item cost vectors.
///
/// * `skewed_front` — the first eighth carries ~90% of the total cost and
///   lands entirely inside worker 0's static chunk: the starvation case.
/// * `powerlaw` — zipf-like decreasing cost, the shape of degree-sorted
///   vertex grids.
/// * `uniform` — every item equal: dynamic claiming must cost nothing.
fn grids() -> Vec<(&'static str, Vec<u64>)> {
    let skewed_front = (0..GRID)
        .map(|i| if i < GRID / 8 { 63 } else { 1 })
        .collect();
    let powerlaw = (0..GRID)
        .map(|i| GRID as u64 / (i as u64 + 1) + 1)
        .collect();
    let uniform = vec![8u64; GRID];
    vec![
        ("skewed_front", skewed_front),
        ("powerlaw", powerlaw),
        ("uniform", uniform),
    ]
}

fn schedules() -> [(&'static str, Schedule); 4] {
    [
        ("static", Schedule::Static),
        ("morsel", Schedule::Morsel { grain: 64 }),
        ("guided", Schedule::Guided),
        ("auto", Schedule::Auto),
    ]
}

/// Worker count for timing: at least two so the pool (and the imbalance)
/// is real even on a single-core machine.
fn gate_workers() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
        .max(2)
}

fn run_weighted(exec: &Executor, costs: &[u64]) {
    exec.for_each_weighted(costs.len(), |i| costs[i], |i| burn(costs[i]));
}

/// Minimum wall-clock milliseconds over `samples` interleaved batches, one
/// executor per schedule so pool state is comparable across sides.
fn paired_wall_ms(samples: usize, workers: usize, costs: &[u64]) -> Vec<f64> {
    let sides: Vec<Executor> = schedules()
        .iter()
        .map(|(_, schedule)| {
            let exec = Executor::new(workers);
            exec.set_schedule(*schedule);
            exec
        })
        .collect();
    for exec in &sides {
        run_weighted(exec, costs); // warm the pool and the caches
    }
    let mut best = vec![f64::INFINITY; sides.len()];
    for _ in 0..samples.max(1) {
        for (slot, exec) in sides.iter().enumerate() {
            let start = Instant::now();
            run_weighted(exec, costs);
            best[slot] = best[slot].min(start.elapsed().as_secs_f64() * 1e3);
        }
    }
    best
}

struct ScheduleRow {
    grid: String,
    schedule: String,
    workers: u64,
    wall_ms: f64,
    speedup_vs_static: f64,
    morsels: u64,
    max_worker_morsels: u64,
    imbalance: f64,
}

impl_to_json!(ScheduleRow {
    grid,
    schedule,
    workers,
    wall_ms,
    speedup_vs_static,
    morsels,
    max_worker_morsels,
    imbalance
});

/// One sweep over grid shape × schedule: timings plus the deterministic
/// morsel/balance counters from `ScheduleStats`.
fn sweep(samples: usize, workers: usize) -> Vec<ScheduleRow> {
    let mut rows = Vec::new();
    for (grid_name, costs) in grids() {
        let walls = paired_wall_ms(samples, workers, &costs);
        let static_ms = walls[0];
        for ((schedule_name, schedule), wall_ms) in schedules().iter().zip(&walls) {
            let exec = Executor::new(workers);
            exec.set_schedule(*schedule);
            let before = exec.schedule_stats();
            run_weighted(&exec, &costs);
            let delta = exec.schedule_stats().since(&before);
            rows.push(ScheduleRow {
                grid: grid_name.to_string(),
                schedule: schedule_name.to_string(),
                workers: workers as u64,
                wall_ms: *wall_ms,
                speedup_vs_static: static_ms / wall_ms.max(1e-12),
                morsels: delta.morsels,
                max_worker_morsels: delta.max_worker_morsels,
                imbalance: delta.imbalance(),
            });
        }
    }
    rows
}

fn print_sweep(rows: &[ScheduleRow]) {
    println!("\n-- Wall clock and balance per grid shape × schedule --");
    print_table(
        &[
            "Grid",
            "Schedule",
            "Wall ms",
            "vs static",
            "Morsels",
            "Max/worker",
            "Imbalance",
        ],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.grid.clone(),
                    r.schedule.clone(),
                    format!("{:.3}", r.wall_ms),
                    format!("{:.2}", r.speedup_vs_static),
                    r.morsels.to_string(),
                    r.max_worker_morsels.to_string(),
                    format!("{:.2}", r.imbalance),
                ]
            })
            .collect::<Vec<_>>(),
    );
}

fn bench() {
    let mut harness = gmc_bench::harness::Harness::from_args();
    let workers = gate_workers();
    let mut group = harness.group("schedule");
    for (grid_name, costs) in grids() {
        for (schedule_name, schedule) in schedules() {
            let exec = Executor::new(workers);
            exec.set_schedule(schedule);
            group.bench(&format!("{grid_name}/{schedule_name}"), |b| {
                b.iter(|| run_weighted(&exec, &costs));
            });
        }
    }
    group.finish();

    let samples: usize = gmc_trace::env::parse_or("GMC_BENCH_SAMPLES", 5);
    let rows = sweep(samples, workers);
    print_sweep(&rows);
    save_json(&BenchEnv::from_env(), "schedule", rows.as_slice());
    harness.finish();
}

/// Paired per-launch nanoseconds `(static, morsel)` for an inline-sized
/// unweighted launch — both sides must take the sequential path, so a
/// dynamic schedule may not add anything measurable.
fn paired_inline_ns(samples: usize) -> (f64, f64) {
    let static_exec = Executor::new(gate_workers());
    static_exec.set_schedule(Schedule::Static);
    let morsel_exec = Executor::new(gate_workers());
    morsel_exec.set_schedule(Schedule::Morsel { grain: 64 });
    let run = |exec: &Executor| {
        exec.for_each_indexed(INLINE_GRID, |i| {
            std::hint::black_box(i);
        });
    };
    let start = Instant::now();
    run(&static_exec);
    run(&morsel_exec);
    let per_iter = (start.elapsed().as_secs_f64() / 2.0).max(1e-9);
    let iters = ((0.020 / per_iter).ceil() as usize).clamp(1, 1_000_000);
    for _ in 0..2 * iters {
        run(&static_exec); // warmup
    }
    let mut best = [f64::INFINITY; 2];
    for _ in 0..samples.max(1) {
        for (slot, exec) in [(0, &static_exec), (1, &morsel_exec)] {
            let start = Instant::now();
            for _ in 0..iters {
                run(exec);
            }
            best[slot] = best[slot].min(start.elapsed().as_secs_f64() * 1e9 / iters as f64);
        }
    }
    (best[0], best[1])
}

/// Reference cost for the inline gate: one pooled 10k exclusive scan.
fn pooled_scan_ns(samples: usize) -> f64 {
    let exec = Executor::new(gate_workers());
    let input: Vec<usize> = (0..10_000).map(|i| i % 13).collect();
    gmc_dpp::exclusive_scan(&exec, &input);
    let mut best = f64::INFINITY;
    for _ in 0..samples.max(1) {
        let start = Instant::now();
        for _ in 0..20 {
            gmc_dpp::exclusive_scan(&exec, &input);
        }
        best = best.min(start.elapsed().as_secs_f64() * 1e9 / 20.0);
    }
    best
}

fn gate() -> ExitCode {
    let samples: usize = gmc_trace::env::parse_or("GMC_BENCH_SAMPLES", 5);
    let workers = gate_workers();
    let mut failed = false;

    println!("-- Perf gate: dynamic scheduling vs static chunks ({workers} workers) --");
    let rows = sweep(samples, workers);
    print_sweep(&rows);
    let wall = |grid: &str, schedule: &str| {
        rows.iter()
            .find(|r| r.grid == grid && r.schedule == schedule)
            .map(|r| r.wall_ms)
            .expect("sweep covers every cell")
    };

    // 1. Front-loaded grid: claiming must actually rebalance. The static
    //    side serialises ~90% of the work, so even two workers give ~1.8×.
    //    On a single hardware thread every schedule timeshares identically
    //    and no speedup is physically possible, so the check needs ≥2 cores.
    let cores = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    if cores >= 2 {
        let speedup = wall("skewed_front", "static") / wall("skewed_front", "morsel");
        let skew_ok = speedup >= 1.3;
        println!(
            "\nskewed_front: morsel {speedup:.2}× over static (gate ≥1.3×) {}",
            if skew_ok { "ok" } else { "FAIL" }
        );
        failed |= !skew_ok;
    } else {
        println!("\nskewed_front speedup check skipped: single-core machine");
    }

    // 2. Uniform grid: claiming overhead must stay in the noise band.
    let ratio = wall("uniform", "morsel") / wall("uniform", "static");
    let uniform_ok = ratio <= 1.05;
    println!(
        "uniform: morsel {ratio:.3}× static (gate ≤1.05×) {}",
        if uniform_ok { "ok" } else { "FAIL" }
    );
    failed |= !uniform_ok;

    // 3. Inline path: grids at or below the sequential limit never touch
    //    the schedule, so installing a dynamic one may add at most 1% of a
    //    pooled 10k scan to the launch.
    let (static_ns, morsel_ns) = paired_inline_ns(samples);
    let scan_ns = pooled_scan_ns(samples);
    let added_pct = 100.0 * (morsel_ns - static_ns) / scan_ns;
    let inline_ok = added_pct < 1.0;
    println!(
        "inline {INLINE_GRID}-item launch: static {static_ns:.0} ns, morsel-installed \
         {morsel_ns:.0} ns — adds {added_pct:+.3}% of a pooled 10k scan (gate <1%) {}",
        if inline_ok { "ok" } else { "FAIL" }
    );
    failed |= !inline_ok;

    if failed {
        eprintln!("schedule gate FAILED");
        ExitCode::FAILURE
    } else {
        println!("schedule gate passed");
        ExitCode::SUCCESS
    }
}

fn main() -> ExitCode {
    if std::env::var("GMC_PERF_GATE").as_deref() == Ok("1") {
        gate()
    } else {
        bench();
        ExitCode::SUCCESS
    }
}
