//! Figure 5: heuristic runtime and pruning-quality characterisation.
//!
//! * 5a — heuristic runtime vs. |E| (runtime grows with edges; the k-core
//!   pass makes the core-number variants markedly slower).
//! * 5b — pruning fraction vs. heuristic accuracy (pruning tracks accuracy).
//! * 5c — heuristic runtime vs. average degree (no strong trend).
//!
//! Heuristics run standalone (no exact phase) on an unlimited device, then
//! setup is replayed to measure the pruned 2-clique volume each bound
//! achieves.

use gmc_bench::impl_to_json;
use gmc_bench::{load_corpus, millis, print_table, save_json, BenchEnv};
use gmc_heuristic::HeuristicKind;
use gmc_mce::SolverConfig;

struct HeuristicPoint {
    dataset: String,
    edges: usize,
    avg_degree: f64,
    true_omega: u32,
    heuristic: String,
    runtime_ms: f64,
    core_ms: f64,
    lower_bound: u32,
    accuracy: f64,
    pruning_fraction: f64,
}

impl_to_json!(HeuristicPoint {
    dataset,
    edges,
    avg_degree,
    true_omega,
    heuristic,
    runtime_ms,
    core_ms,
    lower_bound,
    accuracy,
    pruning_fraction
});

struct Record {
    points: Vec<HeuristicPoint>,
}

impl_to_json!(Record { points });

fn main() {
    let env = BenchEnv::from_env();
    env.banner("Figure 5: heuristic runtime, accuracy and pruning quality");
    let datasets = load_corpus(&env);
    let kinds = [
        HeuristicKind::SingleDegree,
        HeuristicKind::SingleCore,
        HeuristicKind::MultiDegree,
        HeuristicKind::MultiCore,
    ];

    let mut points: Vec<HeuristicPoint> = Vec::new();
    for dataset in &datasets {
        let omega = gmc_bench::true_omega(&env, &dataset.graph);
        for kind in kinds {
            let device = env.unlimited_device();
            let heuristic =
                gmc_heuristic::run_heuristic(&device, &dataset.graph, kind, None).expect("no oom");
            let (_, setup) = gmc_mce::preview_setup(
                &device,
                &dataset.graph,
                &SolverConfig {
                    heuristic: kind,
                    ..SolverConfig::default()
                },
            )
            .expect("no oom");
            let pruning = if setup.total_oriented_edges == 0 {
                0.0
            } else {
                1.0 - setup.initial_entries as f64 / setup.total_oriented_edges as f64
            };
            points.push(HeuristicPoint {
                dataset: dataset.name().to_string(),
                edges: dataset.graph.num_edges(),
                avg_degree: dataset.avg_degree(),
                true_omega: omega,
                heuristic: kind.name().to_string(),
                runtime_ms: millis(heuristic.total_time),
                core_ms: millis(heuristic.core_time),
                lower_bound: heuristic.lower_bound(),
                accuracy: if omega == 0 {
                    1.0
                } else {
                    heuristic.lower_bound() as f64 / omega as f64
                },
                pruning_fraction: pruning,
            });
        }
    }

    // 5a: runtime vs |E| per heuristic.
    println!("\n-- Fig. 5a: heuristic runtime (ms) vs |E| --");
    let mut by_edges: Vec<&HeuristicPoint> = points.iter().collect();
    by_edges.sort_by_key(|p| (p.edges, p.heuristic.clone()));
    print_table(
        &["Dataset", "|E|", "Heuristic", "Runtime ms", "k-core ms"],
        &by_edges
            .iter()
            .map(|p| {
                vec![
                    p.dataset.clone(),
                    p.edges.to_string(),
                    p.heuristic.clone(),
                    format!("{:.2}", p.runtime_ms),
                    format!("{:.2}", p.core_ms),
                ]
            })
            .collect::<Vec<_>>(),
    );

    // 5b: pruning vs accuracy summary per heuristic.
    println!("\n-- Fig. 5b: mean accuracy vs mean pruning fraction --");
    let mut summary_rows = Vec::new();
    for kind in kinds {
        let selected: Vec<&HeuristicPoint> = points
            .iter()
            .filter(|p| p.heuristic == kind.name())
            .collect();
        let mean = |f: fn(&HeuristicPoint) -> f64| {
            selected.iter().map(|p| f(p)).sum::<f64>() / selected.len().max(1) as f64
        };
        summary_rows.push(vec![
            kind.name().to_string(),
            format!("{:.3}", mean(|p| p.accuracy)),
            format!("{:.3}", mean(|p| p.pruning_fraction)),
            format!("{:.2}", mean(|p| p.runtime_ms)),
        ]);
    }
    print_table(
        &[
            "Heuristic",
            "Mean accuracy",
            "Mean pruning",
            "Mean runtime ms",
        ],
        &summary_rows,
    );

    // 5c: runtime vs average degree (correlation summary).
    println!("\n-- Fig. 5c: runtime grows with |E| but not with avg degree --");
    for kind in kinds {
        let selected: Vec<&HeuristicPoint> = points
            .iter()
            .filter(|p| p.heuristic == kind.name())
            .collect();
        let xs: Vec<f64> = selected.iter().map(|p| p.edges as f64).collect();
        let ds: Vec<f64> = selected.iter().map(|p| p.avg_degree).collect();
        let ts: Vec<f64> = selected.iter().map(|p| p.runtime_ms).collect();
        println!(
            "{:>14}: corr(runtime, |E|) = {:+.2}   corr(runtime, avg_deg) = {:+.2}",
            kind.name(),
            pearson(&xs, &ts),
            pearson(&ds, &ts)
        );
    }

    save_json(&env, "fig5_heuristics", &Record { points });
}

fn pearson(x: &[f64], y: &[f64]) -> f64 {
    let n = x.len() as f64;
    if n < 2.0 {
        return 0.0;
    }
    let mx = x.iter().sum::<f64>() / n;
    let my = y.iter().sum::<f64>() / n;
    let (mut num, mut dx, mut dy) = (0.0, 0.0, 0.0);
    for (a, b) in x.iter().zip(y) {
        num += (a - mx) * (b - my);
        dx += (a - mx) * (a - mx);
        dy += (b - my) * (b - my);
    }
    if dx == 0.0 || dy == 0.0 {
        0.0
    } else {
        num / (dx * dy).sqrt()
    }
}
