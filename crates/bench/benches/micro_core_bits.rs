//! Persistent core-graph adjacency bitmaps — build once, probe everywhere.
//!
//! After setup pruning the solver can build one n_core×n_core adjacency
//! bitmap and answer every successor-adjacency probe for the rest of the
//! solve with single word tests (`LocalBitsMode::Persistent`), instead of
//! re-deriving per-level sublist bitmaps (`On`) or walking the scalar
//! edge oracle (`Off`). This bench quantifies the three tiers against each
//! other: wall clock on dense and sparse representatives, plus a probe
//! sweep whose counters prove the persistent tier rebuilds nothing after
//! the one-time build.
//!
//! Two modes:
//!
//! * Default: harness timings (`core_bits/<tier>/<dataset>`) followed by a
//!   probe sweep over the whole smoke corpus (saved as `core_bits.json`).
//! * `GMC_PERF_GATE=1`: CI gate. On the dense gate graphs the persistent
//!   tier must hold wall-clock parity with the per-level tier (within the
//!   harness's 5% noise band), and over the Facebook-like smoke graphs it
//!   must eliminate at least 95% of the scalar walk's edge-oracle probes
//!   with zero per-level rebuilds.

use std::process::ExitCode;
use std::time::Instant;

use gmc_bench::harness::Harness;
use gmc_bench::{impl_to_json, print_table, save_json, BenchEnv};
use gmc_corpus::{corpus, Category, Tier};
use gmc_dpp::Device;
use gmc_graph::Csr;
use gmc_mce::{LocalBitsMode, MaxCliqueSolver};

/// Dense gate instances: long sublists, deep expansion — the regime where
/// rebuilding per-level bitmaps is pure overhead the persistent tier skips.
const DENSE: &[&str] = &["socfb-campus-04", "socfb-campus-13"];

/// Sparse gate instances: shallow solves where the one-time build must not
/// cost more than the per-level plans it replaces.
const SPARSE: &[&str] = &["road-grid-02", "ca-papers-03"];

fn dataset(name: &str) -> Csr {
    gmc_corpus::by_name(Tier::Smoke, name)
        .unwrap_or_else(|| panic!("dataset {name}"))
        .load()
}

/// A dense community graph whose planted clique keeps the walk deep enough
/// that the build-once amortisation is unmistakable.
fn planted_dense() -> Csr {
    let base = gmc_graph::generators::gnp(600, 0.3, 7);
    gmc_graph::generators::plant_clique(&base, 80, 17).0
}

fn solver(local: LocalBitsMode) -> MaxCliqueSolver {
    MaxCliqueSolver::new(Device::unlimited())
        .fused(true)
        .local_bits(local)
}

struct CoreBitsRow {
    dataset: String,
    category: String,
    scalar_queries: u64,
    perlevel_queries: u64,
    perlevel_rows: u64,
    persistent_queries: u64,
    persistent_probes: u64,
    elimination_pct: f64,
    rebuilds: u64,
    persistent_bytes: u64,
}

impl_to_json!(CoreBitsRow {
    dataset,
    category,
    scalar_queries,
    perlevel_queries,
    perlevel_rows,
    persistent_queries,
    persistent_probes,
    elimination_pct,
    rebuilds,
    persistent_bytes
});

/// One solve per tier over the whole smoke corpus: probe counters are
/// deterministic, so no repetition is needed. Asserts bit-identical
/// cliques, the exact accounting invariant, and the persistent tier's
/// zero-rebuild guarantee (`rows_built == 0`: nothing is re-derived after
/// the one-time build).
fn probe_sweep() -> Vec<CoreBitsRow> {
    corpus(Tier::Smoke)
        .iter()
        .map(|spec| {
            let graph = spec.load();
            let run = |local| solver(local).solve(&graph).expect("unlimited device");
            let off = run(LocalBitsMode::Off);
            let on = run(LocalBitsMode::On);
            let per = run(LocalBitsMode::Persistent);
            for r in [&on, &per] {
                assert_eq!(r.cliques, off.cliques, "{}", spec.name);
                assert_eq!(
                    r.stats.oracle_queries + r.stats.local_bits.probes_avoided,
                    off.stats.oracle_queries,
                    "{}",
                    spec.name
                );
            }
            assert_eq!(
                per.stats.local_bits.rows_built, 0,
                "{}: the persistent tier must never rebuild per-level rows",
                spec.name
            );
            assert_eq!(
                per.stats.local_bits.persistent_probes, per.stats.local_bits.probes_avoided,
                "{}",
                spec.name
            );
            let elimination = if off.stats.oracle_queries == 0 {
                100.0
            } else {
                100.0 * (1.0 - per.stats.oracle_queries as f64 / off.stats.oracle_queries as f64)
            };
            CoreBitsRow {
                dataset: spec.name.clone(),
                category: spec.category.prefix().to_string(),
                scalar_queries: off.stats.oracle_queries,
                perlevel_queries: on.stats.oracle_queries,
                perlevel_rows: on.stats.local_bits.rows_built,
                persistent_queries: per.stats.oracle_queries,
                persistent_probes: per.stats.local_bits.persistent_probes,
                elimination_pct: elimination,
                rebuilds: per.stats.local_bits.rows_built,
                persistent_bytes: per.stats.local_bits.persistent_bytes,
            }
        })
        .collect()
}

fn print_sweep(rows: &[CoreBitsRow]) {
    println!("\n-- Edge-oracle probes per solve: scalar vs per-level vs persistent --");
    print_table(
        &[
            "Dataset",
            "Scalar queries",
            "Per-level queries",
            "Per-level rows",
            "Persistent queries",
            "Eliminated %",
            "Rebuilds",
            "Bitmap bytes",
        ],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.dataset.clone(),
                    r.scalar_queries.to_string(),
                    r.perlevel_queries.to_string(),
                    r.perlevel_rows.to_string(),
                    r.persistent_queries.to_string(),
                    format!("{:.1}", r.elimination_pct),
                    r.rebuilds.to_string(),
                    r.persistent_bytes.to_string(),
                ]
            })
            .collect::<Vec<_>>(),
    );
}

fn bench() {
    let mut harness = Harness::from_args();
    let mut group = harness.group("core_bits");
    let mut graphs: Vec<(String, Csr)> = DENSE
        .iter()
        .chain(SPARSE)
        .map(|n| (n.to_string(), dataset(n)))
        .collect();
    graphs.push(("planted_600_dense".into(), planted_dense()));
    for (name, graph) in &graphs {
        for (label, local) in [
            ("persistent", LocalBitsMode::Persistent),
            ("perlevel", LocalBitsMode::On),
            ("scalar", LocalBitsMode::Off),
        ] {
            group.bench(&format!("{label}/{name}"), |b| {
                let s = solver(local);
                b.iter(|| s.solve(graph).unwrap());
            });
        }
    }
    group.finish();

    let rows = probe_sweep();
    print_sweep(&rows);
    save_json(&BenchEnv::from_env(), "core_bits", rows.as_slice());
    harness.finish();
}

/// Paired per-iteration milliseconds `(persistent, perlevel)`, noise-hardened
/// the same three ways as `micro_fused_expand`: ≥20 ms batches, interleaved
/// sides, minimum over `samples` batches.
fn paired_min_ms(samples: usize, graph: &Csr) -> (f64, f64) {
    let run = |local: LocalBitsMode| {
        solver(local).solve(graph).unwrap();
    };
    let start = Instant::now();
    run(LocalBitsMode::Persistent);
    run(LocalBitsMode::On); // warmup both sides + calibration probe
    let per_iter = (start.elapsed().as_secs_f64() / 2.0).max(1e-9);
    let iters = ((0.020 / per_iter).ceil() as usize).clamp(1, 100_000);
    for _ in 0..2 * iters {
        run(LocalBitsMode::Persistent);
    }
    let mut best = [f64::INFINITY; 2];
    for _ in 0..samples.max(1) {
        for (slot, local) in [(0, LocalBitsMode::Persistent), (1, LocalBitsMode::On)] {
            let start = Instant::now();
            for _ in 0..iters {
                run(local);
            }
            best[slot] = best[slot].min(start.elapsed().as_secs_f64() * 1e3 / iters as f64);
        }
    }
    (best[0], best[1])
}

fn gate() -> ExitCode {
    let samples: usize = std::env::var("GMC_BENCH_SAMPLES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(5);
    let mut failed = false;

    println!("-- Perf gate: persistent core bitmap vs per-level rebuilds --");
    let mut dense: Vec<(String, Csr)> = DENSE.iter().map(|n| (n.to_string(), dataset(n))).collect();
    dense.push(("planted_600_dense".into(), planted_dense()));
    let sparse: Vec<(String, Csr)> = SPARSE.iter().map(|n| (n.to_string(), dataset(n))).collect();
    // Dense shares the 5% noise band every wall-clock gate in this harness
    // uses; sparse gets double because its sub-ms solves amplify scheduler
    // jitter and the one-time build must merely stay near cost-free.
    for (graphs, slack, regime) in [(&dense, 1.05, "dense"), (&sparse, 1.10, "sparse")] {
        println!("   ({regime}: persistent must be ≤ {slack}× per-level)");
        for (name, graph) in graphs.iter() {
            let (per_ms, level_ms) = paired_min_ms(samples, graph);
            let ok = per_ms <= level_ms * slack;
            println!(
                "{name:<24} persistent {per_ms:>8.3} ms  per-level {level_ms:>8.3} ms  {}",
                if ok { "ok" } else { "FAIL" }
            );
            failed |= !ok;
        }
    }

    let rows = probe_sweep();
    print_sweep(&rows);
    // Probe gate: over the Facebook-like smoke graphs the persistent tier
    // must eliminate at least 95% of the scalar walk's edge-oracle probes.
    let (per_total, off_total) = rows
        .iter()
        .filter(|r| r.category == Category::Facebook.prefix())
        .fold((0u64, 0u64), |(per, off), r| {
            (per + r.persistent_queries, off + r.scalar_queries)
        });
    let eliminated = 100.0 * (1.0 - per_total as f64 / off_total as f64);
    let probes_ok = per_total * 20 <= off_total;
    println!(
        "\nsocfb oracle probes: persistent {per_total}, scalar {off_total} \
         ({eliminated:.1}% eliminated, gate ≥95%) {}",
        if probes_ok { "ok" } else { "FAIL" }
    );
    failed |= !probes_ok;

    if failed {
        eprintln!("perf gate FAILED");
        ExitCode::FAILURE
    } else {
        println!("perf gate passed");
        ExitCode::SUCCESS
    }
}

fn main() -> ExitCode {
    if std::env::var("GMC_PERF_GATE").as_deref() == Ok("1") {
        gate()
    } else {
        bench();
        ExitCode::SUCCESS
    }
}
