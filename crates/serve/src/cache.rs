//! Exact result cache keyed by (graph fingerprint × config fingerprint)
//! with LRU-by-bytes eviction.
//!
//! The cache is *exact*, not approximate: solves are bit-deterministic
//! across worker counts, schedules and fault injection, so a hit returns
//! the same clique set a fresh solve would produce bit for bit (the serve
//! test suite asserts hit≡miss identity). Entries are shared out as `Arc`s
//! — a hit never copies the clique set.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// A cached solve outcome: everything a served response needs, decoupled
/// from the transient per-solve stats.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CachedSolve {
    /// The clique number ω(G).
    pub clique_number: u32,
    /// The cliques, in the solver's canonical order.
    pub cliques: Vec<Vec<u32>>,
    /// Whether `cliques` enumerates every maximum clique.
    pub complete_enumeration: bool,
}

impl CachedSolve {
    /// Approximate heap footprint, the unit the LRU budget is charged in.
    pub fn byte_size(&self) -> usize {
        let clique_bytes: usize = self
            .cliques
            .iter()
            .map(|c| c.len() * std::mem::size_of::<u32>() + std::mem::size_of::<Vec<u32>>())
            .sum();
        clique_bytes + std::mem::size_of::<Self>()
    }
}

struct Entry {
    value: Arc<CachedSolve>,
    bytes: usize,
    last_used: u64,
}

struct CacheState {
    map: HashMap<(u64, u64), Entry>,
    live_bytes: usize,
    /// Logical clock bumped on every touch; drives LRU eviction.
    tick: u64,
}

/// LRU-by-bytes cache over `(graph_fp, config_fp)` keys.
pub struct ResultCache {
    budget_bytes: usize,
    state: Mutex<CacheState>,
}

impl ResultCache {
    /// A cache evicting past `budget_bytes` of cached cliques (a zero
    /// budget caches nothing).
    pub fn new(budget_bytes: usize) -> Self {
        Self {
            budget_bytes,
            state: Mutex::new(CacheState {
                map: HashMap::new(),
                live_bytes: 0,
                tick: 0,
            }),
        }
    }

    /// Configured byte budget.
    pub fn budget_bytes(&self) -> usize {
        self.budget_bytes
    }

    /// Bytes currently cached.
    pub fn live_bytes(&self) -> usize {
        self.state.lock().expect("cache lock poisoned").live_bytes
    }

    /// Number of cached entries.
    pub fn len(&self) -> usize {
        self.state.lock().expect("cache lock poisoned").map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Looks up a key, refreshing its LRU position on a hit.
    pub fn get(&self, key: (u64, u64)) -> Option<Arc<CachedSolve>> {
        let mut state = self.state.lock().expect("cache lock poisoned");
        state.tick += 1;
        let tick = state.tick;
        let entry = state.map.get_mut(&key)?;
        entry.last_used = tick;
        Some(Arc::clone(&entry.value))
    }

    /// Inserts (or replaces) a key, then evicts least-recently-used
    /// entries until the budget holds. An entry larger than the whole
    /// budget is not cached at all.
    pub fn insert(&self, key: (u64, u64), value: Arc<CachedSolve>) {
        let bytes = value.byte_size();
        if bytes > self.budget_bytes {
            return;
        }
        let mut state = self.state.lock().expect("cache lock poisoned");
        state.tick += 1;
        let tick = state.tick;
        if let Some(old) = state.map.insert(
            key,
            Entry {
                value,
                bytes,
                last_used: tick,
            },
        ) {
            state.live_bytes -= old.bytes;
        }
        state.live_bytes += bytes;
        while state.live_bytes > self.budget_bytes {
            let oldest = state
                .map
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(&k, _)| k)
                .expect("over budget implies at least one entry");
            let evicted = state.map.remove(&oldest).expect("key just found");
            state.live_bytes -= evicted.bytes;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn solve_of(n: u32) -> Arc<CachedSolve> {
        Arc::new(CachedSolve {
            clique_number: n,
            cliques: vec![(0..n).collect()],
            complete_enumeration: true,
        })
    }

    #[test]
    fn hit_returns_the_inserted_value() {
        let cache = ResultCache::new(1 << 20);
        let v = solve_of(5);
        cache.insert((1, 2), Arc::clone(&v));
        assert_eq!(cache.get((1, 2)).unwrap(), v);
        assert!(cache.get((1, 3)).is_none(), "config fp is part of the key");
        assert!(cache.get((2, 2)).is_none(), "graph fp is part of the key");
    }

    #[test]
    fn evicts_least_recently_used_by_bytes() {
        let unit = solve_of(8).byte_size();
        let cache = ResultCache::new(unit * 2);
        cache.insert((1, 0), solve_of(8));
        cache.insert((2, 0), solve_of(8));
        // Touch (1, 0) so (2, 0) becomes the LRU victim.
        assert!(cache.get((1, 0)).is_some());
        cache.insert((3, 0), solve_of(8));
        assert!(cache.get((1, 0)).is_some(), "recently used survives");
        assert!(cache.get((2, 0)).is_none(), "LRU entry evicted");
        assert!(cache.get((3, 0)).is_some());
        assert!(cache.live_bytes() <= cache.budget_bytes());
    }

    #[test]
    fn oversized_and_replaced_entries_account_correctly() {
        let unit = solve_of(4).byte_size();
        let cache = ResultCache::new(unit);
        let huge = Arc::new(CachedSolve {
            clique_number: 4,
            cliques: (0..100).map(|_| vec![0, 1, 2, 3]).collect(),
            complete_enumeration: true,
        });
        cache.insert((9, 9), huge);
        assert!(cache.is_empty(), "entry larger than the budget is skipped");
        cache.insert((1, 1), solve_of(4));
        cache.insert((1, 1), solve_of(4));
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.live_bytes(), unit, "replacement releases old bytes");
    }
}
