//! Bounded priority queue between submitters and the executor pool.
//!
//! Capacity is fixed at construction: [`JobQueue::submit`] blocks the
//! submitting thread while the queue is full (backpressure — the service
//! never buffers unboundedly) and [`JobQueue::try_submit`] fails fast
//! instead. Workers block in [`JobQueue::pop`] until a job or shutdown
//! arrives. Ordering is highest priority first, FIFO within a priority
//! (a submission sequence number breaks ties), so equal-priority traffic
//! is served in arrival order.

use std::collections::BinaryHeap;
use std::sync::{Condvar, Mutex};

/// A queued item with its priority and arrival sequence.
struct Slot<T> {
    priority: u8,
    seq: u64,
    item: T,
}

impl<T> PartialEq for Slot<T> {
    fn eq(&self, other: &Self) -> bool {
        self.priority == other.priority && self.seq == other.seq
    }
}

impl<T> Eq for Slot<T> {}

impl<T> Ord for Slot<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Max-heap: higher priority wins; earlier arrival wins within one.
        self.priority
            .cmp(&other.priority)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl<T> PartialOrd for Slot<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

struct QueueState<T> {
    heap: BinaryHeap<Slot<T>>,
    next_seq: u64,
    closed: bool,
}

/// Bounded blocking priority queue. Cloneable handles are not needed — the
/// service shares it behind an `Arc`.
pub struct JobQueue<T> {
    capacity: usize,
    state: Mutex<QueueState<T>>,
    not_full: Condvar,
    not_empty: Condvar,
}

/// Error from [`JobQueue::try_submit`] / [`JobQueue::submit`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueueError {
    /// The queue is at capacity (non-blocking submission only).
    Full,
    /// The queue was closed for shutdown; no further jobs are accepted.
    Closed,
}

impl std::fmt::Display for QueueError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QueueError::Full => write!(f, "job queue is full"),
            QueueError::Closed => write!(f, "job queue is closed"),
        }
    }
}

impl std::error::Error for QueueError {}

impl<T> JobQueue<T> {
    /// A queue holding at most `capacity` jobs (minimum 1).
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity: capacity.max(1),
            state: Mutex::new(QueueState {
                heap: BinaryHeap::new(),
                next_seq: 0,
                closed: false,
            }),
            not_full: Condvar::new(),
            not_empty: Condvar::new(),
        }
    }

    /// Maximum number of queued jobs.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Jobs currently queued.
    pub fn len(&self) -> usize {
        self.state.lock().expect("queue lock poisoned").heap.len()
    }

    /// Whether no jobs are queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Enqueues `item`, blocking while the queue is full — the
    /// backpressure edge of the service. Fails only once the queue is
    /// closed.
    pub fn submit(&self, priority: u8, item: T) -> Result<(), QueueError> {
        let mut state = self.state.lock().expect("queue lock poisoned");
        loop {
            if state.closed {
                return Err(QueueError::Closed);
            }
            if state.heap.len() < self.capacity {
                break;
            }
            state = self.not_full.wait(state).expect("queue lock poisoned");
        }
        let seq = state.next_seq;
        state.next_seq += 1;
        state.heap.push(Slot {
            priority,
            seq,
            item,
        });
        drop(state);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Enqueues `item` without blocking; [`QueueError::Full`] when at
    /// capacity.
    pub fn try_submit(&self, priority: u8, item: T) -> Result<(), QueueError> {
        let mut state = self.state.lock().expect("queue lock poisoned");
        if state.closed {
            return Err(QueueError::Closed);
        }
        if state.heap.len() >= self.capacity {
            return Err(QueueError::Full);
        }
        let seq = state.next_seq;
        state.next_seq += 1;
        state.heap.push(Slot {
            priority,
            seq,
            item,
        });
        drop(state);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Dequeues the highest-priority job, blocking until one arrives.
    /// `None` means the queue was closed *and* drained — the worker's
    /// signal to exit.
    pub fn pop(&self) -> Option<T> {
        let mut state = self.state.lock().expect("queue lock poisoned");
        loop {
            if let Some(slot) = state.heap.pop() {
                drop(state);
                self.not_full.notify_one();
                return Some(slot.item);
            }
            if state.closed {
                return None;
            }
            state = self.not_empty.wait(state).expect("queue lock poisoned");
        }
    }

    /// Closes the queue: queued jobs still drain, new submissions fail,
    /// and blocked submitters/workers wake.
    pub fn close(&self) {
        self.state.lock().expect("queue lock poisoned").closed = true;
        self.not_full.notify_all();
        self.not_empty.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn orders_by_priority_then_fifo() {
        let q = JobQueue::new(8);
        q.submit(1, "low-a").unwrap();
        q.submit(5, "high-a").unwrap();
        q.submit(1, "low-b").unwrap();
        q.submit(5, "high-b").unwrap();
        assert_eq!(q.pop(), Some("high-a"));
        assert_eq!(q.pop(), Some("high-b"));
        assert_eq!(q.pop(), Some("low-a"));
        assert_eq!(q.pop(), Some("low-b"));
    }

    #[test]
    fn try_submit_fails_fast_when_full() {
        let q = JobQueue::new(2);
        q.try_submit(0, 1).unwrap();
        q.try_submit(0, 2).unwrap();
        assert_eq!(q.try_submit(0, 3), Err(QueueError::Full));
        assert_eq!(q.pop(), Some(1));
        q.try_submit(0, 3).unwrap();
    }

    #[test]
    fn submitter_blocked_on_a_full_queue_wakes_with_closed() {
        // A submitter parked in `submit`'s backpressure wait must be woken
        // by `close()` and get the typed error — never hang, never slip a
        // job into a closed queue.
        let q = Arc::new(JobQueue::new(1));
        q.submit(0, 0u32).unwrap();
        let blocked = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || q.submit(0, 1u32))
        };
        // Give the submitter time to reach the condvar wait; close must
        // wake it regardless of whether it got there yet.
        std::thread::sleep(std::time::Duration::from_millis(20));
        q.close();
        assert_eq!(blocked.join().unwrap(), Err(QueueError::Closed));
        // The job accepted before the close still drains.
        assert_eq!(q.pop(), Some(0));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn submissions_racing_close_never_hang_or_drop_accepted_jobs() {
        // Submitters (blocking and non-blocking) race `close()` while a
        // consumer drains. The contract under test: every submission gets
        // either Ok or a typed error, and every Ok'd job is popped exactly
        // once — acceptance is a promise the queue keeps through shutdown.
        use std::sync::Barrier;
        for round in 0..16u64 {
            let q = Arc::new(JobQueue::<u64>::new(4));
            let accepted = Arc::new(Mutex::new(Vec::new()));
            let submitters = 4u64;
            let barrier = Arc::new(Barrier::new(submitters as usize + 1));
            let handles: Vec<_> = (0..submitters)
                .map(|t| {
                    let q = Arc::clone(&q);
                    let accepted = Arc::clone(&accepted);
                    let barrier = Arc::clone(&barrier);
                    std::thread::spawn(move || {
                        barrier.wait();
                        for i in 0..100u64 {
                            let item = t * 1000 + i;
                            let outcome = if i % 2 == 0 {
                                q.try_submit((i % 3) as u8, item)
                            } else {
                                q.submit((i % 3) as u8, item)
                            };
                            match outcome {
                                Ok(()) => accepted.lock().unwrap().push(item),
                                Err(QueueError::Full) | Err(QueueError::Closed) => {}
                            }
                        }
                    })
                })
                .collect();
            let closer = {
                let q = Arc::clone(&q);
                let barrier = Arc::clone(&barrier);
                std::thread::spawn(move || {
                    barrier.wait();
                    // Vary the race window across rounds: sometimes close
                    // lands mid-burst, sometimes after it.
                    for _ in 0..round * 3 {
                        std::thread::yield_now();
                    }
                    q.close();
                })
            };
            // Drain until closed-and-empty. `None` is only returned once
            // the queue is closed with nothing left, so everything
            // accepted before the close comes out first.
            let mut drained = Vec::new();
            while let Some(item) = q.pop() {
                drained.push(item);
            }
            for h in handles {
                h.join().unwrap();
            }
            closer.join().unwrap();
            // Late (post-close) submissions must all have failed typed.
            assert_eq!(q.submit(0, 9999), Err(QueueError::Closed));
            assert_eq!(q.try_submit(0, 9999), Err(QueueError::Closed));
            let mut accepted = Arc::try_unwrap(accepted)
                .expect("accepted list still shared")
                .into_inner()
                .unwrap();
            accepted.sort_unstable();
            drained.sort_unstable();
            assert_eq!(
                drained, accepted,
                "round {round}: accepted jobs and drained jobs diverge"
            );
        }
    }

    #[test]
    fn submit_blocks_until_space_and_close_drains() {
        let q = Arc::new(JobQueue::new(1));
        q.submit(0, 0u32).unwrap();
        let producer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || {
                // Blocks until the consumer pops the first item.
                for i in 1..=4u32 {
                    q.submit(0, i).unwrap();
                }
            })
        };
        let mut seen = Vec::new();
        for _ in 0..5 {
            seen.push(q.pop().unwrap());
        }
        producer.join().unwrap();
        seen.sort_unstable();
        assert_eq!(seen, vec![0, 1, 2, 3, 4]);
        q.close();
        assert_eq!(q.pop(), None);
        assert_eq!(q.submit(0, 9), Err(QueueError::Closed));
    }
}
