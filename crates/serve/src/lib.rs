//! `gmc_serve`: a batched maximum-clique solve service.
//!
//! The service accepts [`SolveJob`]s — a graph, a full `SolverConfig`, a
//! priority and an optional deadline — through a bounded priority queue
//! and dispatches them across a pool of executor slots, each owning one
//! `Executor` and one equal share of a partitioned `DeviceMemory` budget.
//! Layered on the dispatch path:
//!
//! - **Admission control** ([`admission`]) estimates the solve's working
//!   set from structural bounds (2-clique list size × degeneracy levels)
//!   and, when the full solve cannot fit a slot's partition, rewrites the
//!   job to an auto-sized *enumerate-all* windowed solve — bit-identical
//!   to the full solve — or rejects it before any device bytes charge.
//! - **Result cache** ([`cache`]) keyed by graph × config fingerprints
//!   ([`fingerprint`]) with LRU-by-bytes eviction. The cache is exact
//!   because solves are bit-deterministic across worker counts, schedules
//!   and fault injection; fingerprints deliberately exclude those knobs.
//! - **Deadline cancellation**: jobs with a deadline run under a
//!   cooperative `CancelToken` polled at launch boundaries, surfacing as
//!   a typed `SolveError::Cancelled` with every device byte released.
//! - **Statistics** ([`stats`]) aggregating per-job solver stats and
//!   queue-wait percentiles across the pool.
//!
//! The [`loadgen`] module drives a service with a deterministic two-phase
//! workload whose counters are independent of pool interleaving — the
//! basis for `BENCH_serve.json` and the CI smoke run.

#![warn(missing_docs)]

pub mod admission;
pub mod cache;
pub mod fingerprint;
pub mod loadgen;
pub mod queue;
pub mod service;
pub mod stats;

pub use admission::{admit, core_bitmap_bytes, full_solve_estimate, two_clique_bytes, Admission};
pub use cache::{CachedSolve, ResultCache};
pub use fingerprint::{config_fingerprint, graph_fingerprint};
pub use loadgen::{run_with_graphs, LoadConfig, LoadReport};
pub use queue::{JobQueue, QueueError};
pub use service::{JobHandle, ServeConfig, ServeError, ServedSolve, SolveJob, SolveService};
pub use stats::ServeStats;
