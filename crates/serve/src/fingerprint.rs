//! Cache keys: 64-bit FNV-1a fingerprints of the graph and of the
//! result-affecting subset of the solver configuration.
//!
//! Caching solve results exactly is sound because solves are
//! bit-deterministic: the clique set is proven identical across executor
//! worker counts, launch schedules and fault injection (the PR 5/6
//! determinism suites). Those three knobs — `schedule`, `faults`, `trace` —
//! are therefore *excluded* from the config fingerprint, while every knob
//! that can change the result set (heuristic, orientation, ordering,
//! windowing, early exit, pipeline selection) is folded in. The property
//! suite in `tests/serve.rs` pins both directions.

use std::hash::{Hash, Hasher};

use gmc_graph::Csr;
use gmc_mce::SolverConfig;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a, wrapped in the std [`Hasher`] trait so `#[derive(Hash)]` types
/// can be folded in directly. Deterministic across runs (unlike the
/// randomly-keyed std hash maps), which keeps fingerprints loggable and
/// comparable between service restarts.
pub struct Fnv1a {
    state: u64,
}

impl Fnv1a {
    /// A hasher at the FNV offset basis.
    pub fn new() -> Self {
        Self { state: FNV_OFFSET }
    }
}

impl Default for Fnv1a {
    fn default() -> Self {
        Self::new()
    }
}

impl Hasher for Fnv1a {
    fn finish(&self) -> u64 {
        self.state
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= u64::from(b);
            self.state = self.state.wrapping_mul(FNV_PRIME);
        }
    }
}

/// Fingerprint of a graph's exact CSR structure (vertex count, offsets,
/// neighbor array). Two graphs collide only if they are byte-identical up
/// to a 64-bit hash collision; the cache stores the fingerprint pair only,
/// trading that astronomically-unlikely collision for not retaining every
/// served graph.
pub fn graph_fingerprint(graph: &Csr) -> u64 {
    let mut h = Fnv1a::new();
    graph.num_vertices().hash(&mut h);
    graph.offsets().hash(&mut h);
    graph.neighbor_array().hash(&mut h);
    h.finish()
}

/// Fingerprint of the result-affecting solver knobs.
///
/// Included: heuristic kind and seed count, orientation, edge index,
/// candidate order, sublist bound, witness polish, the full window
/// configuration, early exit, fused pipeline, local-bits mode.
///
/// Excluded (proven result-invariant): `schedule`, `faults`, `trace`.
pub fn config_fingerprint(config: &SolverConfig) -> u64 {
    let mut h = Fnv1a::new();
    config.heuristic.hash(&mut h);
    config.heuristic_seeds.hash(&mut h);
    config.orientation.hash(&mut h);
    config.edge_index.hash(&mut h);
    config.candidate_order.hash(&mut h);
    config.sublist_bound.hash(&mut h);
    config.polish_witness.hash(&mut h);
    // WindowConfig does not derive Hash; fold every field in by hand so a
    // new field is a conscious decision here too.
    match &config.window {
        None => 0u8.hash(&mut h),
        Some(w) => {
            1u8.hash(&mut h);
            w.size.hash(&mut h);
            w.ordering.hash(&mut h);
            w.enumerate_all.hash(&mut h);
            w.max_depth.hash(&mut h);
            w.parallel_windows.hash(&mut h);
        }
    }
    config.early_exit.hash(&mut h);
    config.fused.hash(&mut h);
    config.local_bits.hash(&mut h);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gmc_graph::generators;

    #[test]
    fn graph_fingerprint_separates_structures() {
        let a = generators::gnp(64, 0.3, 7);
        let b = generators::gnp(64, 0.3, 8);
        assert_eq!(graph_fingerprint(&a), graph_fingerprint(&a));
        assert_ne!(graph_fingerprint(&a), graph_fingerprint(&b));
    }

    #[test]
    fn fnv_is_order_sensitive() {
        let mut a = Fnv1a::new();
        let mut b = Fnv1a::new();
        a.write(&[1, 2]);
        b.write(&[2, 1]);
        assert_ne!(a.finish(), b.finish());
    }
}
