//! Service-level statistics: per-job `SolveStats` / `FaultStats` /
//! `ScheduleStats` aggregated across the executor pool, plus queue-wait
//! percentiles from merged per-worker [`LogHistogram`]s.

use gmc_trace::LogHistogram;
use std::time::Duration;

/// Snapshot of everything the service has done since it started.
#[derive(Clone, Default)]
pub struct ServeStats {
    /// Jobs accepted into the queue.
    pub submitted: u64,
    /// Jobs fully processed (any outcome).
    pub completed: u64,
    /// Jobs answered from the result cache.
    pub cache_hits: u64,
    /// Jobs that went to an executor slot.
    pub cache_misses: u64,
    /// Jobs refused by admission control.
    pub rejections: u64,
    /// Jobs admission rewrote to an auto-sized windowed solve.
    pub down_windows: u64,
    /// Jobs admission demoted from the persistent core-bitmap tier to the
    /// per-level tier because only the bitmap's pre-charge oversized the
    /// partition.
    pub bitmap_demotions: u64,
    /// Jobs that ended in `SolveError::Cancelled` (deadline or explicit).
    pub cancellations: u64,
    /// Non-blocking submissions refused because the queue was full.
    pub queue_full: u64,
    /// Queue-wait distribution in nanoseconds (submit → worker pop),
    /// merged across the pool's per-worker histograms.
    pub queue_wait: LogHistogram,
    /// Executor launches summed over all served solves.
    pub launches: u64,
    /// Edge-oracle queries summed over all served solves.
    pub oracle_queries: u64,
    /// Injected faults summed over all served solves (`GMC_FAULTS` runs).
    pub faults_injected: u64,
    /// Recovered faults summed over all served solves.
    pub faults_recovered: u64,
    /// Schedule morsels claimed, summed over all served solves.
    pub sched_morsels: u64,
    /// Total time workers spent inside `solve()`.
    pub solve_time: Duration,
    /// Bytes currently held by the result cache.
    pub cache_bytes: usize,
    /// Entries currently held by the result cache.
    pub cache_entries: usize,
}

impl ServeStats {
    /// Cache hit rate over completed lookups (0 when nothing completed).
    pub fn hit_rate(&self) -> f64 {
        let lookups = self.cache_hits + self.cache_misses;
        if lookups == 0 {
            0.0
        } else {
            self.cache_hits as f64 / lookups as f64
        }
    }

    /// Queue-wait quantile in nanoseconds (see [`LogHistogram::quantile`]).
    pub fn queue_wait_ns(&self, q: f64) -> u64 {
        self.queue_wait.quantile(q)
    }

    /// Completed jobs per second over `wall` (0 for a zero wall clock).
    pub fn throughput(&self, wall: Duration) -> f64 {
        let secs = wall.as_secs_f64();
        if secs <= 0.0 {
            0.0
        } else {
            self.completed as f64 / secs
        }
    }
}

impl std::fmt::Debug for ServeStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServeStats")
            .field("submitted", &self.submitted)
            .field("completed", &self.completed)
            .field("cache_hits", &self.cache_hits)
            .field("cache_misses", &self.cache_misses)
            .field("rejections", &self.rejections)
            .field("down_windows", &self.down_windows)
            .field("bitmap_demotions", &self.bitmap_demotions)
            .field("cancellations", &self.cancellations)
            .field("queue_full", &self.queue_full)
            .field("queue_wait_p50_ns", &self.queue_wait.quantile(0.5))
            .field("queue_wait_p99_ns", &self.queue_wait.quantile(0.99))
            .field("launches", &self.launches)
            .field("oracle_queries", &self.oracle_queries)
            .field("cache_entries", &self.cache_entries)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_rate_and_throughput_handle_zero() {
        let stats = ServeStats::default();
        assert_eq!(stats.hit_rate(), 0.0);
        assert_eq!(stats.throughput(Duration::ZERO), 0.0);
        let stats = ServeStats {
            cache_hits: 3,
            cache_misses: 1,
            completed: 4,
            ..ServeStats::default()
        };
        assert_eq!(stats.hit_rate(), 0.75);
        assert_eq!(stats.throughput(Duration::from_secs(2)), 2.0);
    }
}
