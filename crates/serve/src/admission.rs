//! Admission control: decide per job whether its solve can fit the
//! executor slot's memory partition before any device bytes are charged.
//!
//! The estimate reuses the repo's structural bounds: the 2-clique list
//! costs 8 bytes per oriented edge (two `u32` arrays), and the k-core
//! degeneracy `d` bounds how many further levels the breadth-first
//! expansion can populate (a clique has at most `d + 1` vertices). The
//! coarse worst-case model charges the 2-clique list once per potential
//! level. Jobs whose full-BFS estimate exceeds the partition are
//! *down-windowed* instead of rejected whenever a single auto-sized window
//! fits — with `enumerate_all` kept on, so the windowed result is
//! bit-identical to the full solve it replaces. Only jobs whose bare
//! 2-clique list cannot fit a window are rejected outright.

use gmc_graph::{kcore, CoreBitmap, Csr};
use gmc_mce::{LocalBitsMode, SolverConfig, WindowConfig};

/// Bytes per 2-clique entry: one `u32` vertex id + one `u32` sublist id.
const ENTRY_BYTES: usize = 8;

/// The auto window sizer budgets a quarter of the device capacity per
/// window (see `gmc_mce`'s windowed search), so a down-windowed job needs
/// its largest working set to fit within that fraction.
const WINDOW_FRACTION: usize = 4;

/// The admission verdict for one job against one memory partition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Admission {
    /// The solve is estimated to fit as configured.
    Accept,
    /// The full breadth-first solve is estimated not to fit, but an
    /// auto-sized windowed solve does; run with this window configuration
    /// instead. `enumerate_all` is set, so the result is bit-identical to
    /// the configured full solve.
    DownWindow(WindowConfig),
    /// The solve itself fits, but adding the persistent core bitmap's
    /// pre-charge would not: run with the per-level bitmap tier instead of
    /// rejecting. Output is bit-identical — only probe accounting changes.
    DemotePersistentBits,
    /// Even a single window cannot fit the partition; the job is refused
    /// without charging any device memory.
    Reject {
        /// Estimated bytes of the smallest viable working set.
        estimated_bytes: usize,
        /// The slot's partition capacity.
        partition_bytes: usize,
    },
}

/// Estimated bytes of the 2-clique list (the floor any solve pays).
pub fn two_clique_bytes(graph: &Csr) -> usize {
    graph.num_edges().saturating_mul(ENTRY_BYTES)
}

/// Coarse worst-case estimate for the full breadth-first solve: the
/// 2-clique list once per level the degeneracy admits.
pub fn full_solve_estimate(graph: &Csr, degeneracy: u32) -> usize {
    let levels = (degeneracy as usize).saturating_sub(1).max(1);
    two_clique_bytes(graph).saturating_mul(levels)
}

/// Bytes the persistent core-bitmap tier would pre-charge on this
/// partition, or 0 when the tier would not fire. Admission runs before
/// setup pruning, so the core size is bounded conservatively by the whole
/// vertex set (`n_core = n`): `n²/8` matrix bytes plus `4n` for the
/// renumber table. The `Auto` tier mirrors the solver's own gate — the
/// footprint must fit within the smaller of 16 MiB and a quarter of the
/// partition — so admission never charges for a bitmap the solver would
/// decline to build.
pub fn core_bitmap_bytes(graph: &Csr, config: &SolverConfig, partition_bytes: usize) -> usize {
    if !config.fused {
        return 0;
    }
    let n = graph.num_vertices();
    let footprint = CoreBitmap::footprint_for(n, n);
    match config.local_bits {
        LocalBitsMode::Persistent => footprint,
        LocalBitsMode::Auto if footprint <= (16 << 20).min(partition_bytes / 4) => footprint,
        _ => 0,
    }
}

/// Decides whether `graph` × `config` is admitted to a slot with
/// `partition_bytes` of device memory.
pub fn admit(graph: &Csr, config: &SolverConfig, partition_bytes: usize) -> Admission {
    if partition_bytes == usize::MAX {
        return Admission::Accept;
    }
    // An explicitly windowed job already sizes its working set to the
    // budget; window-level OOM handling (split/recurse) takes it from
    // there. If the persistent bitmap then oversizes the window budget,
    // the solver's own degrade ladder drops it to the per-level tier.
    if config.window.is_some() {
        return Admission::Accept;
    }
    let degeneracy = kcore::degeneracy(graph);
    let full = full_solve_estimate(graph, degeneracy);
    let bitmap = core_bitmap_bytes(graph, config, partition_bytes);
    if full.saturating_add(bitmap) <= partition_bytes {
        return Admission::Accept;
    }
    if bitmap > 0 && full <= partition_bytes {
        // Only the bitmap's pre-charge oversizes the partition. A
        // `Persistent` job is demoted to the per-level tier up front so the
        // solve never risks the build-then-degrade round trip; an `Auto`
        // job is simply accepted — its runtime gate and fault ladder
        // self-heal to the per-level tier on their own.
        return match config.local_bits {
            LocalBitsMode::Persistent => Admission::DemotePersistentBits,
            _ => Admission::Accept,
        };
    }
    let floor = two_clique_bytes(graph);
    if floor.saturating_mul(WINDOW_FRACTION) <= partition_bytes {
        // Auto window sizing against the partition, ties kept so the
        // union of window results is exactly the full enumeration, and
        // one level of recursive splitting in reserve for a window whose
        // subtree still outgrows the estimate.
        let mut window = WindowConfig::auto().recursive(2);
        window.enumerate_all = true;
        return Admission::DownWindow(window);
    }
    Admission::Reject {
        estimated_bytes: floor.saturating_mul(WINDOW_FRACTION),
        partition_bytes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gmc_graph::generators;

    #[test]
    fn small_graph_is_accepted_outright() {
        let graph = generators::gnp(100, 0.1, 3);
        let config = SolverConfig::default();
        assert_eq!(admit(&graph, &config, 64 << 20), Admission::Accept);
        assert_eq!(admit(&graph, &config, usize::MAX), Admission::Accept);
    }

    #[test]
    fn tight_partition_down_windows_with_enumeration_preserved() {
        let graph = generators::gnp(400, 0.3, 5);
        let config = SolverConfig::default();
        let floor = two_clique_bytes(&graph);
        let degeneracy = kcore::degeneracy(&graph);
        // Big enough for a window, too small for the full estimate.
        let partition = floor * WINDOW_FRACTION + 1024;
        assert!(full_solve_estimate(&graph, degeneracy) > partition);
        match admit(&graph, &config, partition) {
            Admission::DownWindow(w) => {
                assert!(w.enumerate_all, "down-windowing must keep enumeration");
                assert_eq!(w.size, 0, "auto-sized against the partition");
                assert!(w.max_depth > 1, "recursive split held in reserve");
            }
            other => panic!("expected DownWindow, got {other:?}"),
        }
    }

    #[test]
    fn hopeless_partition_rejects_without_charging() {
        let graph = generators::gnp(400, 0.3, 5);
        let config = SolverConfig::default();
        match admit(&graph, &config, 4096) {
            Admission::Reject {
                estimated_bytes,
                partition_bytes,
            } => {
                assert!(estimated_bytes > partition_bytes);
                assert_eq!(partition_bytes, 4096);
            }
            other => panic!("expected Reject, got {other:?}"),
        }
    }

    #[test]
    fn persistent_bitmap_oversize_demotes_instead_of_rejecting() {
        let graph = generators::gnp(400, 0.3, 5);
        let degeneracy = kcore::degeneracy(&graph);
        let full = full_solve_estimate(&graph, degeneracy);
        let persistent = SolverConfig {
            local_bits: LocalBitsMode::Persistent,
            ..SolverConfig::default()
        };
        let bitmap = core_bitmap_bytes(&graph, &persistent, usize::MAX - 1);
        assert!(bitmap > 0, "persistent tier always charges the bitmap");
        // The solve fits on its own but not together with the bitmap.
        let partition = full + bitmap / 2;
        assert_eq!(
            admit(&graph, &persistent, partition),
            Admission::DemotePersistentBits
        );
        // With headroom for both, the job is accepted as configured.
        assert_eq!(admit(&graph, &persistent, full + bitmap), Admission::Accept);
        // An `Auto` job on the same tight partition is accepted outright:
        // the solver's own gate and degrade ladder handle the shortfall.
        let auto = SolverConfig::default();
        assert_eq!(admit(&graph, &auto, partition), Admission::Accept);
    }

    #[test]
    fn unfused_jobs_never_charge_a_bitmap() {
        let graph = generators::gnp(400, 0.3, 5);
        let config = SolverConfig {
            fused: false,
            local_bits: LocalBitsMode::Persistent,
            ..SolverConfig::default()
        };
        assert_eq!(core_bitmap_bytes(&graph, &config, 64 << 20), 0);
    }

    #[test]
    fn explicitly_windowed_jobs_bypass_the_estimate() {
        let graph = generators::gnp(400, 0.3, 5);
        let config = SolverConfig {
            window: Some(WindowConfig::auto()),
            ..SolverConfig::default()
        };
        assert_eq!(admit(&graph, &config, 1 << 16), Admission::Accept);
    }
}
