//! The solve service: a bounded priority queue feeding a pool of executor
//! slots, each owning one [`Executor`] and one share of a partitioned
//! [`DeviceMemory`] budget.
//!
//! Job lifecycle: submit (blocking backpressure or fail-fast) → queue →
//! worker pop (queue wait recorded) → cache lookup → admission control →
//! solve with a deadline [`CancelToken`] installed → cache insert →
//! handle fulfilment. Every accepted job is fulfilled exactly once, even
//! through shutdown (the queue drains before workers exit).

use crate::admission::{admit, Admission};
use crate::cache::{CachedSolve, ResultCache};
use crate::fingerprint::{config_fingerprint, graph_fingerprint};
use crate::queue::{JobQueue, QueueError};
use crate::stats::ServeStats;
use gmc_dpp::{CancelToken, Device, DeviceMemory, Executor};
use gmc_graph::Csr;
use gmc_mce::{LocalBitsMode, MaxCliqueSolver, SolveError, SolverConfig};
use gmc_trace::LogHistogram;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Service sizing, with every knob routed through the shared fail-loud
/// environment parser (`GMC_SERVE_POOL`, `GMC_SERVE_QUEUE`,
/// `GMC_SERVE_CACHE_MB`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeConfig {
    /// Executor slots in the pool; the device budget is partitioned
    /// equally between them.
    pub pool: usize,
    /// Bounded queue depth; a full queue blocks [`SolveService::submit`].
    pub queue_depth: usize,
    /// Result-cache budget in bytes (LRU eviction past it).
    pub cache_bytes: usize,
    /// OS workers per slot executor.
    pub workers_per_slot: usize,
    /// Total device-memory budget split across the pool.
    pub device_bytes: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            pool: 2,
            queue_depth: 16,
            cache_bytes: 64 << 20,
            workers_per_slot: 1,
            device_bytes: usize::MAX,
        }
    }
}

impl ServeConfig {
    /// Reads `GMC_SERVE_POOL` / `GMC_SERVE_QUEUE` / `GMC_SERVE_CACHE_MB`
    /// (fail-loud: a set-but-invalid value panics naming the variable),
    /// with the struct defaults for unset variables.
    pub fn from_env() -> Self {
        let defaults = Self::default();
        Self {
            pool: gmc_trace::env::parse_or("GMC_SERVE_POOL", defaults.pool),
            queue_depth: gmc_trace::env::parse_or("GMC_SERVE_QUEUE", defaults.queue_depth),
            cache_bytes: gmc_trace::env::parse_or::<usize>("GMC_SERVE_CACHE_MB", 64) << 20,
            ..defaults
        }
    }

    /// Sets the pool size.
    pub fn pool(mut self, slots: usize) -> Self {
        self.pool = slots.max(1);
        self
    }

    /// Sets the queue depth.
    pub fn queue_depth(mut self, depth: usize) -> Self {
        self.queue_depth = depth.max(1);
        self
    }

    /// Sets the result-cache budget in bytes.
    pub fn cache_bytes(mut self, bytes: usize) -> Self {
        self.cache_bytes = bytes;
        self
    }

    /// Sets the per-slot executor worker count.
    pub fn workers_per_slot(mut self, workers: usize) -> Self {
        self.workers_per_slot = workers.max(1);
        self
    }

    /// Sets the total device budget partitioned across the pool.
    pub fn device_bytes(mut self, bytes: usize) -> Self {
        self.device_bytes = bytes;
        self
    }
}

/// One solve request.
#[derive(Debug, Clone)]
pub struct SolveJob {
    /// The graph to solve (shared, never copied into the service).
    pub graph: Arc<Csr>,
    /// Solver configuration; `schedule`/`faults`/`trace` are honoured but
    /// excluded from the cache key (they are result-invariant).
    pub config: SolverConfig,
    /// Higher runs earlier; FIFO within a priority.
    pub priority: u8,
    /// Absolute deadline: the solve is cancelled at the next launch
    /// boundary past it, surfacing `SolveError::Cancelled`.
    pub deadline: Option<Instant>,
}

impl SolveJob {
    /// A default-priority, no-deadline job with the default configuration.
    pub fn new(graph: Arc<Csr>) -> Self {
        Self {
            graph,
            config: SolverConfig::default(),
            priority: 0,
            deadline: None,
        }
    }

    /// Replaces the solver configuration.
    pub fn config(mut self, config: SolverConfig) -> Self {
        self.config = config;
        self
    }

    /// Sets the priority.
    pub fn priority(mut self, priority: u8) -> Self {
        self.priority = priority;
        self
    }

    /// Sets the deadline.
    pub fn deadline(mut self, deadline: Instant) -> Self {
        self.deadline = Some(deadline);
        self
    }
}

/// A served result: the (possibly cached) solve plus serving metadata.
#[derive(Debug, Clone)]
pub struct ServedSolve {
    /// The solve outcome, shared with the cache.
    pub solve: Arc<CachedSolve>,
    /// Whether the result came from the cache.
    pub cache_hit: bool,
    /// Whether admission rewrote the job to an auto-sized windowed solve.
    pub down_windowed: bool,
    /// Time the job waited in the queue before a worker picked it up.
    pub queue_wait: Duration,
}

/// Why a job was not served.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServeError {
    /// Admission control refused the job: even a windowed working set is
    /// estimated not to fit the slot partition.
    Rejected {
        /// Estimated bytes of the smallest viable working set.
        estimated_bytes: usize,
        /// The slot's partition capacity.
        partition_bytes: usize,
    },
    /// Non-blocking submission found the queue full.
    QueueFull,
    /// The service is shutting down; no new jobs are accepted.
    Shutdown,
    /// The solve itself failed (OOM, fault-retry exhaustion, or — for
    /// deadline/explicit cancellation — `SolveError::Cancelled`).
    Solve(SolveError),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Rejected {
                estimated_bytes,
                partition_bytes,
            } => write!(
                f,
                "admission rejected the job: estimated {estimated_bytes} B exceeds the \
                 {partition_bytes} B slot partition"
            ),
            ServeError::QueueFull => write!(f, "job queue is full"),
            ServeError::Shutdown => write!(f, "service is shutting down"),
            ServeError::Solve(err) => err.fmt(f),
        }
    }
}

impl std::error::Error for ServeError {}

struct HandleCell {
    outcome: Mutex<Option<Result<ServedSolve, ServeError>>>,
    done: Condvar,
}

/// Waitable handle to an accepted job; fulfilled exactly once.
pub struct JobHandle {
    cell: Arc<HandleCell>,
}

impl JobHandle {
    /// Blocks until the job completes and returns its outcome.
    pub fn wait(self) -> Result<ServedSolve, ServeError> {
        let mut outcome = self.cell.outcome.lock().expect("handle lock poisoned");
        loop {
            if let Some(result) = outcome.take() {
                return result;
            }
            outcome = self.cell.done.wait(outcome).expect("handle lock poisoned");
        }
    }

    /// Non-blocking poll; `Some` at most once.
    pub fn try_wait(&self) -> Option<Result<ServedSolve, ServeError>> {
        self.cell
            .outcome
            .lock()
            .expect("handle lock poisoned")
            .take()
    }
}

fn fulfill(cell: &HandleCell, result: Result<ServedSolve, ServeError>) {
    *cell.outcome.lock().expect("handle lock poisoned") = Some(result);
    cell.done.notify_all();
}

struct QueuedJob {
    job: SolveJob,
    submitted_at: Instant,
    cell: Arc<HandleCell>,
}

#[derive(Default)]
struct Counters {
    submitted: AtomicU64,
    completed: AtomicU64,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    rejections: AtomicU64,
    down_windows: AtomicU64,
    bitmap_demotions: AtomicU64,
    cancellations: AtomicU64,
    queue_full: AtomicU64,
    launches: AtomicU64,
    oracle_queries: AtomicU64,
    faults_injected: AtomicU64,
    faults_recovered: AtomicU64,
    sched_morsels: AtomicU64,
    solve_ns: AtomicU64,
}

struct ServiceInner {
    queue: JobQueue<QueuedJob>,
    cache: ResultCache,
    counters: Counters,
    /// One queue-wait histogram per slot, merged on snapshot — workers
    /// never contend on a shared lock in the pop path.
    wait_hists: Vec<Mutex<LogHistogram>>,
}

/// The multi-tenant solve service. Dropping it closes the queue, drains
/// outstanding jobs and joins the pool.
pub struct SolveService {
    inner: Arc<ServiceInner>,
    workers: Vec<JoinHandle<()>>,
    partition_bytes: usize,
    started_at: Instant,
}

impl SolveService {
    /// Starts the pool: `config.pool` worker threads, each owning one
    /// executor and one equal share of the device budget.
    pub fn start(config: ServeConfig) -> Self {
        let pool = config.pool.max(1);
        let partitions = DeviceMemory::new(config.device_bytes).partition(pool);
        let partition_bytes = partitions[0].capacity();
        let inner = Arc::new(ServiceInner {
            queue: JobQueue::new(config.queue_depth),
            cache: ResultCache::new(config.cache_bytes),
            counters: Counters::default(),
            wait_hists: (0..pool).map(|_| Mutex::new(LogHistogram::new())).collect(),
        });
        let workers = partitions
            .into_iter()
            .enumerate()
            .map(|(slot, memory)| {
                let inner = Arc::clone(&inner);
                let device = Device::from_parts(Executor::new(config.workers_per_slot), memory);
                std::thread::Builder::new()
                    .name(format!("gmc-serve-slot-{slot}"))
                    .spawn(move || worker_loop(&inner, slot, &device))
                    .expect("failed to spawn serve worker thread")
            })
            .collect();
        Self {
            inner,
            workers,
            partition_bytes,
            started_at: Instant::now(),
        }
    }

    /// Device bytes available to each slot.
    pub fn partition_bytes(&self) -> usize {
        self.partition_bytes
    }

    /// Executor slots in the pool.
    pub fn pool_size(&self) -> usize {
        self.workers.len()
    }

    /// Time since the service started (denominator for throughput).
    pub fn uptime(&self) -> Duration {
        self.started_at.elapsed()
    }

    /// Submits a job, blocking while the queue is full (backpressure).
    pub fn submit(&self, job: SolveJob) -> Result<JobHandle, ServeError> {
        self.enqueue(job, true)
    }

    /// Submits a job without blocking; [`ServeError::QueueFull`] when the
    /// queue is at capacity.
    pub fn try_submit(&self, job: SolveJob) -> Result<JobHandle, ServeError> {
        self.enqueue(job, false)
    }

    fn enqueue(&self, job: SolveJob, blocking: bool) -> Result<JobHandle, ServeError> {
        let cell = Arc::new(HandleCell {
            outcome: Mutex::new(None),
            done: Condvar::new(),
        });
        let priority = job.priority;
        let queued = QueuedJob {
            job,
            submitted_at: Instant::now(),
            cell: Arc::clone(&cell),
        };
        let result = if blocking {
            self.inner.queue.submit(priority, queued)
        } else {
            self.inner.queue.try_submit(priority, queued)
        };
        match result {
            Ok(()) => {
                self.inner
                    .counters
                    .submitted
                    .fetch_add(1, Ordering::Relaxed);
                Ok(JobHandle { cell })
            }
            Err(QueueError::Full) => {
                self.inner
                    .counters
                    .queue_full
                    .fetch_add(1, Ordering::Relaxed);
                Err(ServeError::QueueFull)
            }
            Err(QueueError::Closed) => Err(ServeError::Shutdown),
        }
    }

    /// Snapshot of the service counters and the merged queue-wait
    /// distribution.
    pub fn stats(&self) -> ServeStats {
        let c = &self.inner.counters;
        let mut queue_wait = LogHistogram::new();
        for hist in &self.inner.wait_hists {
            queue_wait.merge(&hist.lock().expect("histogram lock poisoned"));
        }
        ServeStats {
            submitted: c.submitted.load(Ordering::Relaxed),
            completed: c.completed.load(Ordering::Relaxed),
            cache_hits: c.cache_hits.load(Ordering::Relaxed),
            cache_misses: c.cache_misses.load(Ordering::Relaxed),
            rejections: c.rejections.load(Ordering::Relaxed),
            down_windows: c.down_windows.load(Ordering::Relaxed),
            bitmap_demotions: c.bitmap_demotions.load(Ordering::Relaxed),
            cancellations: c.cancellations.load(Ordering::Relaxed),
            queue_full: c.queue_full.load(Ordering::Relaxed),
            queue_wait,
            launches: c.launches.load(Ordering::Relaxed),
            oracle_queries: c.oracle_queries.load(Ordering::Relaxed),
            faults_injected: c.faults_injected.load(Ordering::Relaxed),
            faults_recovered: c.faults_recovered.load(Ordering::Relaxed),
            sched_morsels: c.sched_morsels.load(Ordering::Relaxed),
            solve_time: Duration::from_nanos(c.solve_ns.load(Ordering::Relaxed)),
            cache_bytes: self.inner.cache.live_bytes(),
            cache_entries: self.inner.cache.len(),
        }
    }

    /// Closes the queue, drains every outstanding job and joins the pool;
    /// returns the final stats.
    pub fn shutdown(mut self) -> ServeStats {
        self.inner.queue.close();
        for worker in self.workers.drain(..) {
            worker.join().expect("serve worker panicked");
        }
        self.stats()
    }
}

impl Drop for SolveService {
    fn drop(&mut self) {
        self.inner.queue.close();
        for worker in self.workers.drain(..) {
            // A panicking worker already poisoned the run; don't
            // double-panic during drop.
            let _ = worker.join();
        }
    }
}

fn worker_loop(inner: &ServiceInner, slot: usize, device: &Device) {
    while let Some(queued) = inner.queue.pop() {
        let wait = queued.submitted_at.elapsed();
        inner.wait_hists[slot]
            .lock()
            .expect("histogram lock poisoned")
            .record(wait.as_nanos().min(u128::from(u64::MAX)) as u64);
        serve_one(inner, device, queued, wait);
        inner.counters.completed.fetch_add(1, Ordering::Relaxed);
    }
}

fn serve_one(inner: &ServiceInner, device: &Device, queued: QueuedJob, wait: Duration) {
    let c = &inner.counters;
    let job = &queued.job;
    let key = (
        graph_fingerprint(&job.graph),
        config_fingerprint(&job.config),
    );

    // Cache hits are exact (solves are bit-deterministic) and effectively
    // free, so they are served even past the deadline.
    if let Some(cached) = inner.cache.get(key) {
        c.cache_hits.fetch_add(1, Ordering::Relaxed);
        fulfill(
            &queued.cell,
            Ok(ServedSolve {
                solve: cached,
                cache_hit: true,
                down_windowed: false,
                queue_wait: wait,
            }),
        );
        return;
    }
    c.cache_misses.fetch_add(1, Ordering::Relaxed);

    // Admission against this slot's partition, before any bytes charge.
    let mut config = job.config.clone();
    let mut down_windowed = false;
    match admit(&job.graph, &config, device.memory().capacity()) {
        Admission::Accept => {}
        Admission::DownWindow(window) => {
            // Bit-identity is preserved (enumerate-all windows union to
            // the full enumeration), so the cache key stays the job's
            // submitted fingerprint.
            config.window = Some(window);
            down_windowed = true;
            c.down_windows.fetch_add(1, Ordering::Relaxed);
        }
        Admission::DemotePersistentBits => {
            // The solve fits but the persistent bitmap's pre-charge does
            // not; the per-level tier produces the identical clique set,
            // so the cache key stays the job's submitted fingerprint.
            config.local_bits = LocalBitsMode::On;
            c.bitmap_demotions.fetch_add(1, Ordering::Relaxed);
        }
        Admission::Reject {
            estimated_bytes,
            partition_bytes,
        } => {
            c.rejections.fetch_add(1, Ordering::Relaxed);
            fulfill(
                &queued.cell,
                Err(ServeError::Rejected {
                    estimated_bytes,
                    partition_bytes,
                }),
            );
            return;
        }
    }

    // Deadline enforcement: a token on the slot's executor, polled at
    // launch boundaries. Removed before the next job either way.
    if let Some(deadline) = job.deadline {
        device.set_cancel_token(Some(CancelToken::with_deadline(deadline)));
    }
    let solver = MaxCliqueSolver::with_config(device.clone(), config);
    let solve_start = Instant::now();
    let outcome = solver.solve(&job.graph);
    c.solve_ns.fetch_add(
        solve_start.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64,
        Ordering::Relaxed,
    );
    device.set_cancel_token(None);

    match outcome {
        Ok(result) => {
            c.launches
                .fetch_add(result.stats.launches.launches, Ordering::Relaxed);
            c.oracle_queries
                .fetch_add(result.stats.oracle_queries, Ordering::Relaxed);
            c.faults_injected
                .fetch_add(result.stats.faults.injected(), Ordering::Relaxed);
            c.faults_recovered
                .fetch_add(result.stats.faults.recovered(), Ordering::Relaxed);
            c.sched_morsels
                .fetch_add(result.stats.sched.morsels, Ordering::Relaxed);
            let cached = Arc::new(CachedSolve {
                clique_number: result.clique_number,
                cliques: result.cliques,
                complete_enumeration: result.complete_enumeration,
            });
            inner.cache.insert(key, Arc::clone(&cached));
            fulfill(
                &queued.cell,
                Ok(ServedSolve {
                    solve: cached,
                    cache_hit: false,
                    down_windowed,
                    queue_wait: wait,
                }),
            );
        }
        Err(err) => {
            if matches!(err, SolveError::Cancelled(_)) {
                c.cancellations.fetch_add(1, Ordering::Relaxed);
            }
            debug_assert_eq!(
                device.memory().live(),
                0,
                "a failed solve must release every device charge"
            );
            fulfill(&queued.cell, Err(ServeError::Solve(err)));
        }
    }
}
