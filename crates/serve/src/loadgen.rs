//! Deterministic closed-loop load generator for the solve service.
//!
//! Two phases make the counters order-independent no matter how the pool
//! interleaves work:
//!
//! 1. **Populate** — every unique job is submitted once and awaited before
//!    the next, so each is a guaranteed cache miss and the cache holds all
//!    unique keys afterwards. Each result is checked bit-for-bit against a
//!    standalone `solve()` on an unconstrained device.
//! 2. **Replay** — a seeded [`Rng`] draws repeat jobs over the phase-1
//!    keys (guaranteed hits, submitted concurrently so backpressure and
//!    the pool are exercised) plus past-deadline sentinel jobs on fresh
//!    graphs (guaranteed cancellations).
//!
//! With the default mix (`repeats ≥ unique`), the measured hit rate is
//! `repeats / (unique + repeats + deadline_jobs)` exactly — a fixed
//! number, not a race outcome.

use crate::cache::CachedSolve;
use crate::service::{ServeError, SolveJob, SolveService};
use gmc_dpp::{Device, Rng};
use gmc_graph::{generators, Csr};
use gmc_mce::{MaxCliqueSolver, SolveError, SolverConfig};
use std::sync::Arc;
use std::time::Instant;

/// Workload shape for one load-generator run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LoadConfig {
    /// Distinct (graph, config) jobs submitted in the populate phase.
    pub unique: usize,
    /// Seeded repeat draws over the unique jobs (all cache hits).
    pub repeats: usize,
    /// Past-deadline sentinel jobs on fresh graphs (all cancelled).
    pub deadline_jobs: usize,
    /// Vertices per generated G(n, p) graph.
    pub vertices: usize,
    /// Edge probability of the generated graphs.
    pub edge_probability: f64,
    /// Master seed; graphs and the replay draw derive from it.
    pub seed: u64,
}

impl Default for LoadConfig {
    fn default() -> Self {
        Self {
            unique: 6,
            repeats: 10,
            deadline_jobs: 2,
            vertices: 120,
            edge_probability: 0.15,
            seed: 42,
        }
    }
}

/// Deterministic outcome of one load-generator run. Every field is a
/// function of [`LoadConfig`] alone — none depends on pool interleaving
/// or wall-clock timing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoadReport {
    /// Jobs submitted in total across both phases.
    pub total_jobs: u64,
    /// Populate-phase jobs (each a cache miss).
    pub unique_jobs: u64,
    /// Replay-phase repeat jobs (each a cache hit).
    pub repeat_jobs: u64,
    /// Sentinel jobs that ran into their (already-past) deadline.
    pub deadline_jobs: u64,
    /// Hits observed via `ServedSolve::cache_hit`.
    pub cache_hits: u64,
    /// Misses observed via `ServedSolve::cache_hit`.
    pub cache_misses: u64,
    /// Jobs that surfaced `SolveError::Cancelled` with the deadline flag.
    pub cancellations: u64,
    /// Whether every served result — hit and miss — matched the
    /// standalone solve bit for bit.
    pub bit_identical: bool,
    /// Clique number per unique graph, in submission order.
    pub clique_numbers: Vec<u32>,
}

impl LoadReport {
    /// Hit rate over served lookups, mirroring `ServeStats::hit_rate`.
    pub fn hit_rate(&self) -> f64 {
        let lookups = self.cache_hits + self.cache_misses;
        if lookups == 0 {
            0.0
        } else {
            self.cache_hits as f64 / lookups as f64
        }
    }
}

fn unique_graph(cfg: &LoadConfig, index: usize) -> Arc<Csr> {
    // Graph seeds derive from the master seed; index 0.. are the unique
    // jobs, indices past `unique` are reserved for deadline sentinels.
    Arc::new(generators::gnp(
        cfg.vertices,
        cfg.edge_probability,
        cfg.seed.wrapping_add(index as u64),
    ))
}

fn matches_reference(served: &CachedSolve, reference: &CachedSolve) -> bool {
    served == reference
}

/// Drives `service` with the configured generated workload and returns
/// the deterministic report.
pub fn run(service: &SolveService, cfg: &LoadConfig) -> LoadReport {
    let uniques: Vec<_> = (0..cfg.unique).map(|i| unique_graph(cfg, i)).collect();
    let sentinels: Vec<_> = (0..cfg.deadline_jobs)
        .map(|i| unique_graph(cfg, cfg.unique + i))
        .collect();
    run_with_graphs(service, &uniques, &sentinels, cfg.repeats, cfg.seed)
}

/// Drives `service` with caller-supplied graphs (e.g. the smoke corpus):
/// each graph in `uniques` is one populate-phase job, `repeats` seeded
/// draws replay them, and each graph in `sentinels` is submitted with an
/// already-past deadline. Sentinel graphs must be distinct from the unique
/// graphs, or the cache would answer them before the deadline is checked.
/// Panics if the service refuses a job the workload expects admissible.
pub fn run_with_graphs(
    service: &SolveService,
    uniques: &[Arc<Csr>],
    sentinels: &[Arc<Csr>],
    repeats: usize,
    seed: u64,
) -> LoadReport {
    let config = SolverConfig::default();
    let mut report = LoadReport {
        total_jobs: 0,
        unique_jobs: uniques.len() as u64,
        repeat_jobs: repeats as u64,
        deadline_jobs: sentinels.len() as u64,
        cache_hits: 0,
        cache_misses: 0,
        cancellations: 0,
        bit_identical: true,
        clique_numbers: Vec::with_capacity(uniques.len()),
    };

    // Phase 1: populate. Closed loop — each unique job completes before
    // the next is submitted, so each is a guaranteed miss.
    let mut graphs = Vec::with_capacity(uniques.len());
    let mut references = Vec::with_capacity(uniques.len());
    for graph in uniques {
        let graph = Arc::clone(graph);
        let reference = MaxCliqueSolver::with_config(Device::unlimited(), config.clone())
            .solve(&graph)
            .expect("reference solve on an unlimited device cannot fail");
        let reference = CachedSolve {
            clique_number: reference.clique_number,
            cliques: reference.cliques,
            complete_enumeration: reference.complete_enumeration,
        };
        let handle = service
            .submit(SolveJob::new(Arc::clone(&graph)).config(config.clone()))
            .expect("populate submit failed");
        let served = handle.wait().expect("populate solve failed");
        report.total_jobs += 1;
        if served.cache_hit {
            report.cache_hits += 1;
        } else {
            report.cache_misses += 1;
        }
        report.bit_identical &= !served.cache_hit;
        report.bit_identical &= matches_reference(&served.solve, &reference);
        report.clique_numbers.push(reference.clique_number);
        graphs.push(graph);
        references.push(reference);
    }

    // Phase 2: replay. Every key is cached, so each draw is a guaranteed
    // hit; submissions overlap to exercise the queue and pool.
    let mut rng = Rng::seed_from_u64(seed ^ 0x9e37_79b9_7f4a_7c15);
    let mut pending = Vec::with_capacity(repeats);
    for _ in 0..repeats {
        let pick = (rng.next_u64() % graphs.len().max(1) as u64) as usize;
        let handle = service
            .submit(SolveJob::new(Arc::clone(&graphs[pick])).config(config.clone()))
            .expect("replay submit failed");
        pending.push((pick, handle));
    }
    for (pick, handle) in pending {
        let served = handle.wait().expect("replay solve failed");
        report.total_jobs += 1;
        if served.cache_hit {
            report.cache_hits += 1;
        } else {
            report.cache_misses += 1;
        }
        report.bit_identical &= served.cache_hit;
        report.bit_identical &= matches_reference(&served.solve, &references[pick]);
    }

    // Deadline sentinels: fresh graphs (no cache short-circuit) with a
    // deadline already in the past, so the solve cancels at its first
    // launch boundary.
    for graph in sentinels {
        let handle = service
            .submit(
                SolveJob::new(Arc::clone(graph))
                    .config(config.clone())
                    .deadline(Instant::now()),
            )
            .expect("sentinel submit failed");
        report.total_jobs += 1;
        match handle.wait() {
            Err(ServeError::Solve(SolveError::Cancelled(cancelled))) => {
                report.cache_misses += 1;
                report.cancellations += u64::from(cancelled.deadline_exceeded);
            }
            other => panic!("sentinel job should cancel at its deadline, got {other:?}"),
        }
    }

    report
}
