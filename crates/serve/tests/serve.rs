//! Integration suite for the solve service: fingerprint soundness, cache
//! hit≡miss bit-identity, cancellation hygiene, backpressure under
//! saturation, and the admission verdicts end to end.

use gmc_dpp::{CancelToken, Device, DeviceMemory, Executor, FaultPlan, Schedule, Tracer};
use gmc_graph::generators;
use gmc_heuristic::HeuristicKind;
use gmc_mce::{
    CandidateOrder, EdgeIndexKind, LocalBitsMode, MaxCliqueSolver, OrientationRule, SolveError,
    SolverConfig, SublistBound, WindowConfig, WindowOrdering,
};
use gmc_serve::{
    config_fingerprint, loadgen, LoadConfig, ServeConfig, ServeError, SolveJob, SolveService,
};
use std::sync::Arc;
use std::time::Instant;

/// A config with every environment-sensitive knob pinned, so fingerprint
/// comparisons do not depend on `GMC_*` variables set by CI ablation jobs.
fn pinned_config() -> SolverConfig {
    SolverConfig {
        local_bits: LocalBitsMode::Auto,
        schedule: Schedule::Auto,
        faults: None,
        ..SolverConfig::default()
    }
}

/// A named knob mutation for the fingerprint property tests.
type Mutation<'a> = (&'a str, Box<dyn Fn(&mut SolverConfig)>);

#[test]
fn fingerprint_flips_on_every_result_affecting_knob() {
    let base = pinned_config();
    let base_fp = config_fingerprint(&base);

    // One mutation per result-affecting knob; each must change the key.
    let mutations: Vec<Mutation> = vec![
        ("heuristic", Box::new(|c| c.heuristic = HeuristicKind::None)),
        ("heuristic_seeds", Box::new(|c| c.heuristic_seeds = Some(4))),
        (
            "orientation",
            Box::new(|c| c.orientation = OrientationRule::Index),
        ),
        (
            "edge_index",
            Box::new(|c| c.edge_index = EdgeIndexKind::Bitset),
        ),
        (
            "candidate_order",
            Box::new(|c| c.candidate_order = CandidateOrder::Index),
        ),
        (
            "sublist_bound",
            Box::new(|c| c.sublist_bound = SublistBound::Coloring),
        ),
        ("polish_witness", Box::new(|c| c.polish_witness = true)),
        (
            "window presence",
            Box::new(|c| c.window = Some(WindowConfig::default())),
        ),
        ("early_exit", Box::new(|c| c.early_exit = false)),
        ("fused", Box::new(|c| c.fused = false)),
        ("local_bits", Box::new(|c| c.local_bits = LocalBitsMode::On)),
    ];
    for (name, mutate) in &mutations {
        let mut config = pinned_config();
        mutate(&mut config);
        assert_ne!(
            config_fingerprint(&config),
            base_fp,
            "mutating `{name}` must change the config fingerprint"
        );
    }

    // Every window field is part of the key once a window is present.
    let windowed = |f: &dyn Fn(&mut WindowConfig)| {
        let mut config = pinned_config();
        let mut w = WindowConfig::default();
        f(&mut w);
        config.window = Some(w);
        config_fingerprint(&config)
    };
    let window_base = windowed(&|_| {});
    assert_ne!(windowed(&|w| w.size = 1024), window_base, "window.size");
    assert_ne!(
        windowed(&|w| w.ordering = WindowOrdering::DegreeDescending),
        window_base,
        "window.ordering"
    );
    assert_ne!(
        windowed(&|w| w.enumerate_all = true),
        window_base,
        "window.enumerate_all"
    );
    assert_ne!(
        windowed(&|w| w.max_depth = 3),
        window_base,
        "window.max_depth"
    );
    assert_ne!(
        windowed(&|w| w.parallel_windows = 2),
        window_base,
        "window.parallel_windows"
    );

    // Result-invariant knobs must NOT change the key: a job solved under a
    // different schedule, fault plan or tracer hits the same cache entry.
    let mut config = pinned_config();
    config.schedule = Schedule::Guided;
    assert_eq!(config_fingerprint(&config), base_fp, "schedule is excluded");
    let mut config = pinned_config();
    config.faults = Some(FaultPlan {
        seed: 7,
        alloc_rate: 0.05,
        launch_rate: 0.05,
        max_retries: 8,
    });
    assert_eq!(config_fingerprint(&config), base_fp, "faults are excluded");
    let mut config = pinned_config();
    config.trace = Tracer::disabled();
    assert_eq!(config_fingerprint(&config), base_fp, "trace is excluded");
}

#[test]
fn served_results_are_bit_identical_for_hits_and_misses() {
    let service = SolveService::start(ServeConfig::default().pool(2).queue_depth(8));
    let load = LoadConfig {
        unique: 4,
        repeats: 8,
        deadline_jobs: 2,
        vertices: 100,
        edge_probability: 0.15,
        seed: 7,
    };
    let report = loadgen::run(&service, &load);
    assert!(report.bit_identical, "hits and misses must match solve()");
    assert_eq!(report.cache_hits, 8, "every replay draw is a hit");
    assert_eq!(report.cache_misses, 4 + 2, "uniques + sentinels all miss");
    assert_eq!(report.cancellations, 2, "every sentinel cancels");
    assert!(report.hit_rate() >= 0.4, "hit rate {}", report.hit_rate());

    let stats = service.shutdown();
    assert_eq!(stats.submitted, report.total_jobs);
    assert_eq!(stats.completed, report.total_jobs);
    assert_eq!(stats.cache_hits, report.cache_hits);
    assert_eq!(stats.cache_misses, report.cache_misses);
    assert_eq!(stats.cancellations, 2);
    assert_eq!(stats.queue_wait.count(), report.total_jobs);
    assert!(stats.launches > 0, "misses went through the executor");
}

#[test]
fn deadline_cancellation_releases_memory_and_does_not_poison_the_device() {
    // Direct device-level hygiene check: a windowed solve cancelled at a
    // window boundary must leave zero live device bytes and a reusable
    // executor behind.
    let graph = generators::gnp(150, 0.2, 11);
    let mut config = pinned_config();
    config.window = Some(WindowConfig::with_size(256).recursive(2));
    config.window.as_mut().unwrap().enumerate_all = true;

    let device = Device::from_parts(Executor::new(2), DeviceMemory::new(64 << 20));
    device.set_cancel_token(Some(CancelToken::with_deadline(Instant::now())));
    let err = MaxCliqueSolver::with_config(device.clone(), config.clone())
        .solve(&graph)
        .expect_err("a past-deadline solve must cancel");
    match err {
        SolveError::Cancelled(cancelled) => assert!(cancelled.deadline_exceeded),
        other => panic!("expected Cancelled, got {other:?}"),
    }
    assert_eq!(
        device.memory().live(),
        0,
        "cancellation must release every device charge"
    );

    // Same device, token removed: the next solve must succeed and match a
    // fresh device bit for bit — cancellation left no poisoned state.
    device.set_cancel_token(None);
    let after = MaxCliqueSolver::with_config(device.clone(), config.clone())
        .solve(&graph)
        .expect("the slot must be reusable after a cancellation");
    let reference = MaxCliqueSolver::with_config(Device::unlimited(), config)
        .solve(&graph)
        .unwrap();
    assert_eq!(after.clique_number, reference.clique_number);
    assert_eq!(after.cliques, reference.cliques);
    assert_eq!(device.memory().live(), 0);
}

#[test]
fn cancelled_job_does_not_poison_the_slot_for_the_next_job() {
    // Pool of one: the sentinel and the follow-up job share one executor
    // slot, so a leak or stale token would corrupt the second solve.
    let service = SolveService::start(ServeConfig::default().pool(1).queue_depth(4));
    let graph = Arc::new(generators::gnp(120, 0.15, 3));

    let sentinel = service
        .submit(
            SolveJob::new(Arc::clone(&graph))
                .config(pinned_config())
                .deadline(Instant::now()),
        )
        .unwrap();
    match sentinel.wait() {
        Err(ServeError::Solve(SolveError::Cancelled(c))) => assert!(c.deadline_exceeded),
        other => panic!("expected cancellation, got {other:?}"),
    }

    let follow_up = service
        .submit(SolveJob::new(Arc::clone(&graph)).config(pinned_config()))
        .unwrap();
    let served = follow_up.wait().expect("slot must survive a cancellation");
    assert!(!served.cache_hit, "the cancelled job must not have cached");
    let reference = MaxCliqueSolver::with_config(Device::unlimited(), pinned_config())
        .solve(&graph)
        .unwrap();
    assert_eq!(served.solve.clique_number, reference.clique_number);
    assert_eq!(served.solve.cliques, reference.cliques);

    let stats = service.shutdown();
    assert_eq!(stats.cancellations, 1);
    assert_eq!(stats.completed, 2);
}

#[test]
fn backpressure_at_four_times_saturation_completes_without_deadlock() {
    let service = Arc::new(SolveService::start(
        ServeConfig::default().pool(2).queue_depth(4),
    ));
    // 4× the queue depth beyond what the pool drains instantly: blocking
    // submits must stall and resume rather than drop or deadlock.
    let jobs = 4 * 4 + 4;
    let graphs: Vec<_> = (0..4)
        .map(|i| Arc::new(generators::gnp(80, 0.15, 100 + i)))
        .collect();
    let producer = {
        let service = Arc::clone(&service);
        let graphs = graphs.clone();
        std::thread::spawn(move || {
            (0..jobs)
                .map(|i| {
                    service
                        .submit(
                            SolveJob::new(Arc::clone(&graphs[i % graphs.len()]))
                                .config(pinned_config())
                                .priority((i % 3) as u8),
                        )
                        .expect("blocking submit must not fail while open")
                })
                .collect::<Vec<_>>()
        })
    };
    let handles = producer.join().unwrap();
    assert_eq!(handles.len(), jobs);
    for handle in handles {
        handle.wait().expect("every accepted job completes");
    }
    let stats = Arc::try_unwrap(service)
        .ok()
        .expect("all clones dropped")
        .shutdown();
    assert_eq!(stats.submitted, jobs as u64);
    assert_eq!(stats.completed, jobs as u64);
    // 4 unique keys over 20 jobs: at least the 16 repeats can hit, though
    // racing misses on the same key may lower it; the floor is the point.
    assert!(stats.cache_hits + stats.cache_misses == jobs as u64);
}

#[test]
fn admission_rejects_and_down_windows_through_the_service() {
    let graph = Arc::new(generators::gnp(200, 0.3, 5));
    let floor = gmc_serve::two_clique_bytes(&graph);

    // Partition below even a windowed working set: typed rejection, and
    // the slot served it without ever charging device memory.
    let service = SolveService::start(ServeConfig::default().pool(1).device_bytes(4096));
    let handle = service
        .submit(SolveJob::new(Arc::clone(&graph)).config(pinned_config()))
        .unwrap();
    match handle.wait() {
        Err(ServeError::Rejected {
            estimated_bytes,
            partition_bytes,
        }) => {
            assert!(estimated_bytes > partition_bytes);
            assert_eq!(partition_bytes, 4096);
        }
        other => panic!("expected Rejected, got {other:?}"),
    }
    let stats = service.shutdown();
    assert_eq!(stats.rejections, 1);

    // Partition that fits a window but not the full solve: the job is
    // down-windowed and still bit-identical to the unconstrained solve.
    let service = SolveService::start(
        ServeConfig::default()
            .pool(1)
            .device_bytes(floor * 4 + (64 << 10)),
    );
    let handle = service
        .submit(SolveJob::new(Arc::clone(&graph)).config(pinned_config()))
        .unwrap();
    let served = handle.wait().expect("down-windowed solve must succeed");
    assert!(
        served.down_windowed,
        "admission must have rewritten the job"
    );
    let reference = MaxCliqueSolver::with_config(Device::unlimited(), pinned_config())
        .solve(&graph)
        .unwrap();
    assert_eq!(served.solve.clique_number, reference.clique_number);
    assert_eq!(served.solve.cliques, reference.cliques);
    assert!(served.solve.complete_enumeration);

    // A repeat of the same job hits the cache under the *submitted*
    // fingerprint even though it ran windowed.
    let repeat = service
        .submit(SolveJob::new(Arc::clone(&graph)).config(pinned_config()))
        .unwrap();
    let served = repeat.wait().unwrap();
    assert!(served.cache_hit);
    let stats = service.shutdown();
    assert_eq!(stats.down_windows, 1);
    assert_eq!(stats.cache_hits, 1);
}

#[test]
fn persistent_bitmap_oversize_is_demoted_not_rejected_through_the_service() {
    let graph = Arc::new(generators::gnp(200, 0.3, 5));
    let mut config = pinned_config();
    config.local_bits = LocalBitsMode::Persistent;

    // Size the partition so the full solve fits but the persistent
    // bitmap's pre-charge pushes past it: admission must demote to the
    // per-level tier instead of rejecting.
    let degeneracy = gmc_graph::kcore::degeneracy(&graph);
    let full = gmc_serve::full_solve_estimate(&graph, degeneracy);
    let bitmap = gmc_serve::core_bitmap_bytes(&graph, &config, usize::MAX - 1);
    assert!(bitmap > 0, "persistent jobs always charge the bitmap");

    let service = SolveService::start(
        ServeConfig::default()
            .pool(1)
            .device_bytes(full + bitmap / 2),
    );
    let handle = service
        .submit(SolveJob::new(Arc::clone(&graph)).config(config.clone()))
        .unwrap();
    let served = handle.wait().expect("demoted solve must succeed");
    assert!(!served.down_windowed, "demotion is not a window rewrite");

    // The per-level tier is bit-identical to an unconstrained persistent
    // solve.
    let reference = MaxCliqueSolver::with_config(Device::unlimited(), config)
        .solve(&graph)
        .unwrap();
    assert_eq!(served.solve.clique_number, reference.clique_number);
    assert_eq!(served.solve.cliques, reference.cliques);

    let stats = service.shutdown();
    assert_eq!(stats.bitmap_demotions, 1);
    assert_eq!(stats.rejections, 0);
    assert_eq!(stats.down_windows, 0);
}
