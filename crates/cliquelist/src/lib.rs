//! # gmc-cliquelist: the paper's clique-list data structure (§IV-B)
//!
//! A breadth-first clique search must store *every* candidate clique of the
//! current level simultaneously. The paper introduces the *clique list* for
//! this: a linked list with one node per search level, where each node holds
//! two parallel arrays:
//!
//! * `vertex_id[i]` — the candidate vertex entry `i` adds to its clique;
//! * `sublist_id[i]` — the index in the *previous* level's arrays of the
//!   entry this candidate extends (a back-pointer).
//!
//! Entries extending the same parent are contiguous, forming *sublists*.
//! The first node is special: it packs the first two levels of the search
//! tree by storing the source vertex of each 2-clique directly in
//! `sublist_id`. A clique is read out by walking back-pointers from the head
//! node (see the paper's Fig. 1 walk-through, reproduced in
//! [`CliqueList::read_clique`]'s tests).
//!
//! Every level's arrays are charged against a [`DeviceMemory`] budget: the
//! clique list is precisely the allocation that makes breadth-first search
//! memory-hungry, so its footprint is what the paper's OOM results measure.

#![warn(missing_docs)]

use gmc_dpp::{DeviceBuffer, DeviceMemory, DeviceOom};

/// One node of the clique list: all candidate entries for a single level of
/// the breadth-first search. Level `L` (0-based) holds `(L + 2)`-cliques.
pub struct CliqueLevel {
    vertex_id: DeviceBuffer<u32>,
    sublist_id: DeviceBuffer<u32>,
}

impl CliqueLevel {
    /// Wraps the two parallel arrays, charging their bytes to `memory`.
    ///
    /// # Panics
    /// Panics if the arrays differ in length.
    pub fn from_vecs(
        memory: &DeviceMemory,
        vertex_id: Vec<u32>,
        sublist_id: Vec<u32>,
    ) -> Result<Self, DeviceOom> {
        assert_eq!(
            vertex_id.len(),
            sublist_id.len(),
            "vertex_id and sublist_id must be parallel arrays"
        );
        Ok(Self {
            vertex_id: DeviceBuffer::from_vec(memory, vertex_id)?,
            sublist_id: DeviceBuffer::from_vec(memory, sublist_id)?,
        })
    }

    /// Consumes the level, releasing its device charge and returning the two
    /// host arrays — lets callers recycle a retired level's buffers across
    /// levels and windows instead of reallocating them.
    pub fn into_vecs(self) -> (Vec<u32>, Vec<u32>) {
        (self.vertex_id.into_vec(), self.sublist_id.into_vec())
    }

    /// Number of candidate entries in this level.
    pub fn len(&self) -> usize {
        self.vertex_id.len()
    }

    /// Whether the level holds no candidates.
    pub fn is_empty(&self) -> bool {
        self.vertex_id.is_empty()
    }

    /// The candidate vertex array.
    pub fn vertex_ids(&self) -> &[u32] {
        self.vertex_id.as_slice()
    }

    /// The back-pointer array (source vertices for the first level).
    pub fn sublist_ids(&self) -> &[u32] {
        self.sublist_id.as_slice()
    }

    /// Whether entry `i` is the last entry of its sublist.
    #[inline]
    pub fn is_sublist_end(&self, i: usize) -> bool {
        i + 1 == self.len() || self.sublist_id[i] != self.sublist_id[i + 1]
    }

    /// Start indices of every sublist (entries sharing a `sublist_id` run).
    pub fn sublist_starts(&self) -> Vec<usize> {
        let ids = self.sublist_id.as_slice();
        let mut starts = Vec::new();
        for i in 0..ids.len() {
            if i == 0 || ids[i] != ids[i - 1] {
                starts.push(i);
            }
        }
        starts
    }

    /// Number of sublists in this level.
    pub fn num_sublists(&self) -> usize {
        self.sublist_starts().len()
    }

    /// The end (exclusive) of the last complete sublist whose final entry is
    /// at or before `nominal_end - 1`; returns 0 when no sublist completes
    /// within the prefix.
    ///
    /// This is the paper's window-boundary snap (§IV-E): the GPU version has
    /// threads scan a chunk of `sublist_id` values and `atomicMin` the first
    /// boundary at or below the nominal cut; here the scan is sequential
    /// backwards from the cut, which visits the same entries.
    pub fn snap_window_end(&self, nominal_end: usize) -> usize {
        let n = self.len();
        if nominal_end >= n {
            return n;
        }
        // Walk left from the nominal cut until the entry before the cut is a
        // sublist end.
        let mut end = nominal_end;
        while end > 0 && !self.is_sublist_end(end - 1) {
            end -= 1;
        }
        end
    }
}

impl std::fmt::Debug for CliqueLevel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CliqueLevel")
            .field("entries", &self.len())
            .finish()
    }
}

/// The full linked list of levels for one breadth-first search.
#[derive(Default)]
pub struct CliqueList {
    levels: Vec<CliqueLevel>,
}

impl CliqueList {
    /// An empty clique list.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends the next level (the new head).
    pub fn push_level(&mut self, level: CliqueLevel) {
        self.levels.push(level);
    }

    /// Drops the head level (used when a window's expansion is rolled back).
    pub fn pop_level(&mut self) -> Option<CliqueLevel> {
        self.levels.pop()
    }

    /// Number of levels currently stored.
    pub fn num_levels(&self) -> usize {
        self.levels.len()
    }

    /// The most recently added level, if any.
    pub fn head(&self) -> Option<&CliqueLevel> {
        self.levels.last()
    }

    /// Level `i` (0 = the packed 2-clique node).
    pub fn level(&self, i: usize) -> &CliqueLevel {
        &self.levels[i]
    }

    /// The clique size represented by entries of level `i`.
    pub fn clique_size_at(&self, i: usize) -> usize {
        i + 2
    }

    /// Total entries across all levels (× 8 bytes ≈ device footprint).
    pub fn total_entries(&self) -> usize {
        self.levels.iter().map(CliqueLevel::len).sum()
    }

    /// Reads out the clique represented by entry `entry` of level
    /// `level_idx` by walking back-pointers, exactly as the paper's Fig. 1
    /// walk-through describes. Vertices are returned in ascending search
    /// order (source vertex first).
    pub fn read_clique(&self, level_idx: usize, entry: usize) -> Vec<u32> {
        let mut clique = Vec::with_capacity(level_idx + 2);
        let mut ptr = entry;
        for lvl in (0..=level_idx).rev() {
            let level = &self.levels[lvl];
            clique.push(level.vertex_ids()[ptr]);
            if lvl == 0 {
                // The first node packs the source vertex into sublist_id.
                clique.push(level.sublist_ids()[ptr]);
            } else {
                ptr = level.sublist_ids()[ptr] as usize;
            }
        }
        clique.reverse();
        clique
    }

    /// Reads out every clique stored at level `level_idx`.
    pub fn read_all_cliques(&self, level_idx: usize) -> Vec<Vec<u32>> {
        (0..self.levels[level_idx].len())
            .map(|entry| self.read_clique(level_idx, entry))
            .collect()
    }
}

impl std::fmt::Debug for CliqueList {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CliqueList")
            .field("levels", &self.levels.len())
            .field("total_entries", &self.total_entries())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds the clique list from the paper's Fig. 1 example graph:
    /// vertices A..E = 0..4 with maximum clique {B, C, D, E} = {1, 2, 3, 4}.
    ///
    /// Level 0 (2-cliques, sublist_id = source vertex):
    ///   sublist: A A B B B C C D
    ///   vertex:  B C C D E D E E
    /// Level 1 (3-cliques, pointers into level 0):
    ///   parent entries: A→B gives C; A→C …; matching the paper's figure in
    ///   spirit (exact layout below).
    fn figure1_list(memory: &DeviceMemory) -> CliqueList {
        let mut list = CliqueList::new();
        // A=0, B=1, C=2, D=3, E=4.
        list.push_level(
            CliqueLevel::from_vecs(
                memory,
                vec![1, 2, 2, 3, 4, 3, 4, 4], // vertex_id
                vec![0, 0, 1, 1, 1, 2, 2, 3], // sublist_id = source vertex
            )
            .unwrap(),
        );
        // 3-cliques: {A,B,C} from entry0+C?, etc. We store: entries
        // extending level-0 entries (index shown in comment).
        list.push_level(
            CliqueLevel::from_vecs(
                memory,
                vec![2, 3, 4, 4, 4], // vertex added
                vec![0, 2, 2, 3, 5], // parent entry in level 0
            )
            .unwrap(),
        );
        // 4-cliques: {B,C,D,E} — extends level-1 entry 1 ({B,C,D}) with E.
        list.push_level(CliqueLevel::from_vecs(memory, vec![4], vec![1]).unwrap());
        list
    }

    #[test]
    fn readout_matches_figure_walkthrough() {
        let memory = DeviceMemory::unlimited();
        let list = figure1_list(&memory);
        assert_eq!(list.num_levels(), 3);
        assert_eq!(list.clique_size_at(2), 4);
        // Head level has a single 4-clique {B, C, D, E} = {1, 2, 3, 4}.
        assert_eq!(list.read_clique(2, 0), vec![1, 2, 3, 4]);
    }

    #[test]
    fn readout_of_lower_levels() {
        let memory = DeviceMemory::unlimited();
        let list = figure1_list(&memory);
        // Level 0 entry 0 is the 2-clique {A, B}.
        assert_eq!(list.read_clique(0, 0), vec![0, 1]);
        // Level 1 entry 0 extends {A, B} with C.
        assert_eq!(list.read_clique(1, 0), vec![0, 1, 2]);
        // Level 1 entry 4 extends {C, D} with E.
        assert_eq!(list.read_clique(1, 4), vec![2, 3, 4]);
    }

    #[test]
    fn read_all_cliques_at_level() {
        let memory = DeviceMemory::unlimited();
        let list = figure1_list(&memory);
        let triangles = list.read_all_cliques(1);
        assert_eq!(triangles.len(), 5);
        assert!(triangles.contains(&vec![1, 2, 3]));
        assert!(triangles.contains(&vec![1, 2, 4]));
    }

    #[test]
    fn sublist_structure() {
        let memory = DeviceMemory::unlimited();
        let list = figure1_list(&memory);
        let level0 = list.level(0);
        assert_eq!(level0.sublist_starts(), vec![0, 2, 5, 7]);
        assert_eq!(level0.num_sublists(), 4);
        assert!(level0.is_sublist_end(1));
        assert!(!level0.is_sublist_end(2));
        assert!(level0.is_sublist_end(7));
    }

    #[test]
    fn window_snapping_lands_on_boundaries() {
        let memory = DeviceMemory::unlimited();
        let list = figure1_list(&memory);
        let level0 = list.level(0);
        // Boundaries after entries 1, 4, 6, 7 → valid window ends 2, 5, 7, 8.
        assert_eq!(level0.snap_window_end(0), 0);
        assert_eq!(level0.snap_window_end(1), 0);
        assert_eq!(level0.snap_window_end(2), 2);
        assert_eq!(level0.snap_window_end(3), 2);
        assert_eq!(level0.snap_window_end(4), 2);
        assert_eq!(level0.snap_window_end(5), 5);
        assert_eq!(level0.snap_window_end(6), 5);
        assert_eq!(level0.snap_window_end(7), 7);
        assert_eq!(level0.snap_window_end(8), 8);
        assert_eq!(level0.snap_window_end(100), 8);
    }

    #[test]
    fn memory_is_charged_and_released() {
        let memory = DeviceMemory::new(1024);
        {
            let _list = figure1_list(&memory);
            // 8 + 5 + 1 entries × 2 arrays × 4 bytes.
            assert_eq!(memory.live(), 14 * 8);
        }
        assert_eq!(memory.live(), 0);
        assert_eq!(memory.peak(), 14 * 8);
    }

    #[test]
    fn oom_propagates_from_level_allocation() {
        let memory = DeviceMemory::new(32);
        let big = vec![0u32; 100];
        assert!(CliqueLevel::from_vecs(&memory, big.clone(), big).is_err());
    }

    #[test]
    fn pop_level_rolls_back() {
        let memory = DeviceMemory::unlimited();
        let mut list = figure1_list(&memory);
        assert_eq!(list.total_entries(), 14);
        let popped = list.pop_level().unwrap();
        assert_eq!(popped.len(), 1);
        assert_eq!(list.num_levels(), 2);
        assert_eq!(list.total_entries(), 13);
    }

    #[test]
    #[should_panic(expected = "parallel arrays")]
    fn mismatched_arrays_rejected() {
        let memory = DeviceMemory::unlimited();
        let _ = CliqueLevel::from_vecs(&memory, vec![1, 2], vec![0]);
    }
}
