//! Bron–Kerbosch maximal clique enumeration.
//!
//! The paper's related work is largely about *maximal* clique enumeration
//! (Jenkins et al., Lessley et al., Wei et al.): cliques not contained in a
//! larger clique, of any size. The maximum cliques are exactly the maximal
//! cliques of the largest size, so this enumerator doubles as another
//! independent oracle for the breadth-first solver (and is useful in its own
//! right for downstream analyses that want all cohesive groups).
//!
//! The implementation is Bron–Kerbosch with Tomita pivoting and a
//! degeneracy-ordered outer loop — the variant with the
//! `O(d · n · 3^(d/3))` bound, where `d` is the graph degeneracy (the
//! Moon–Moser-style bound Wei et al. size their GPU subtrees with).

use gmc_graph::{kcore, Csr};

/// Result of a maximal clique enumeration.
///
/// ```
/// use gmc_graph::Csr;
/// use gmc_pmc::MaximalCliques;
///
/// // A triangle with a tail: two maximal cliques.
/// let g = Csr::from_edges(4, &[(0, 1), (1, 2), (0, 2), (2, 3)]);
/// let maximal = MaximalCliques::enumerate(&g);
/// assert_eq!(maximal.cliques, vec![vec![0, 1, 2], vec![2, 3]]);
/// assert_eq!(maximal.maximum_cliques(), vec![vec![0, 1, 2]]);
/// ```
#[derive(Debug, Clone)]
pub struct MaximalCliques {
    /// All maximal cliques, each sorted ascending; list sorted
    /// lexicographically.
    pub cliques: Vec<Vec<u32>>,
}

impl MaximalCliques {
    /// Enumerates all maximal cliques of `graph`.
    pub fn enumerate(graph: &Csr) -> Self {
        let n = graph.num_vertices();
        let mut cliques: Vec<Vec<u32>> = Vec::new();
        if n == 0 {
            return Self { cliques };
        }
        // Degeneracy-ordered outer loop: vertex v with candidate set P =
        // later neighbors, excluded set X = earlier neighbors.
        let (order, _) = kcore::degeneracy_order(graph);
        let mut rank = vec![0usize; n];
        for (i, &v) in order.iter().enumerate() {
            rank[v as usize] = i;
        }
        for &v in &order {
            let mut p: Vec<u32> = Vec::new();
            let mut x: Vec<u32> = Vec::new();
            for &u in graph.neighbors(v) {
                if rank[u as usize] > rank[v as usize] {
                    p.push(u);
                } else {
                    x.push(u);
                }
            }
            let mut current = vec![v];
            bron_kerbosch_pivot(graph, &mut current, p, x, &mut cliques);
        }
        for clique in &mut cliques {
            clique.sort_unstable();
        }
        cliques.sort();
        Self { cliques }
    }

    /// Number of maximal cliques.
    pub fn count(&self) -> usize {
        self.cliques.len()
    }

    /// The largest maximal clique size (= the clique number ω).
    pub fn clique_number(&self) -> u32 {
        self.cliques.iter().map(Vec::len).max().unwrap_or(0) as u32
    }

    /// The maximal cliques of maximum size — i.e. the maximum cliques.
    pub fn maximum_cliques(&self) -> Vec<Vec<u32>> {
        let omega = self.clique_number() as usize;
        self.cliques
            .iter()
            .filter(|c| c.len() == omega)
            .cloned()
            .collect()
    }

    /// Histogram of maximal clique sizes (index = size).
    pub fn size_histogram(&self) -> Vec<usize> {
        let omega = self.clique_number() as usize;
        let mut hist = vec![0usize; omega + 1];
        for clique in &self.cliques {
            hist[clique.len()] += 1;
        }
        hist
    }
}

// Re-exported for convenience next to the enumerator it characterises.
pub use gmc_graph::bounds::moon_moser_bound;

fn bron_kerbosch_pivot(
    graph: &Csr,
    current: &mut Vec<u32>,
    p: Vec<u32>,
    mut x: Vec<u32>,
    out: &mut Vec<Vec<u32>>,
) {
    if p.is_empty() && x.is_empty() {
        out.push(current.clone());
        return;
    }
    if p.is_empty() {
        return;
    }
    // Tomita pivot: the vertex of P ∪ X with the most neighbors in P
    // minimises the branching.
    let pivot = p
        .iter()
        .chain(x.iter())
        .copied()
        .max_by_key(|&u| p.iter().filter(|&&w| graph.has_edge(u, w)).count())
        .expect("P is non-empty");
    let branches: Vec<u32> = p
        .iter()
        .copied()
        .filter(|&u| !graph.has_edge(pivot, u))
        .collect();
    let mut p = p;
    for v in branches {
        let next_p: Vec<u32> = p
            .iter()
            .copied()
            .filter(|&u| graph.has_edge(u, v))
            .collect();
        let next_x: Vec<u32> = x
            .iter()
            .copied()
            .filter(|&u| graph.has_edge(u, v))
            .collect();
        current.push(v);
        bron_kerbosch_pivot(graph, current, next_p, next_x, out);
        current.pop();
        p.retain(|&u| u != v);
        x.push(v);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ReferenceEnumerator;
    use gmc_graph::generators;

    #[test]
    fn triangle_with_tail() {
        let g = Csr::from_edges(4, &[(0, 1), (1, 2), (0, 2), (2, 3)]);
        let m = MaximalCliques::enumerate(&g);
        assert_eq!(m.cliques, vec![vec![0, 1, 2], vec![2, 3]]);
        assert_eq!(m.clique_number(), 3);
        assert_eq!(m.maximum_cliques(), vec![vec![0, 1, 2]]);
        assert_eq!(m.size_histogram(), vec![0, 0, 1, 1]);
    }

    #[test]
    fn complete_graph_has_one_maximal() {
        let g = generators::complete(7);
        let m = MaximalCliques::enumerate(&g);
        assert_eq!(m.count(), 1);
        assert_eq!(m.clique_number(), 7);
    }

    #[test]
    fn empty_and_edgeless() {
        assert_eq!(MaximalCliques::enumerate(&Csr::empty(0)).count(), 0);
        let m = MaximalCliques::enumerate(&Csr::empty(3));
        // Isolated vertices are maximal 1-cliques.
        assert_eq!(m.cliques, vec![vec![0], vec![1], vec![2]]);
    }

    #[test]
    fn moody_white_square() {
        // C4: two maximal cliques... no wait, four edges, each maximal.
        let g = Csr::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        let m = MaximalCliques::enumerate(&g);
        assert_eq!(m.count(), 4);
        assert!(m.cliques.iter().all(|c| c.len() == 2));
    }

    #[test]
    fn maximum_cliques_match_reference_enumerator() {
        for seed in 0..8 {
            let g = generators::gnp(50, 0.2, seed);
            let m = MaximalCliques::enumerate(&g);
            let (omega, cliques) = ReferenceEnumerator::enumerate(&g);
            assert_eq!(m.clique_number(), omega, "seed {seed}");
            assert_eq!(m.maximum_cliques(), cliques, "seed {seed}");
        }
    }

    #[test]
    fn every_reported_clique_is_maximal() {
        let g = generators::gnp(40, 0.25, 9);
        let m = MaximalCliques::enumerate(&g);
        for clique in &m.cliques {
            assert!(g.is_clique(clique));
            // No vertex extends it.
            for v in 0..g.num_vertices() as u32 {
                if clique.contains(&v) {
                    continue;
                }
                assert!(
                    !clique.iter().all(|&c| g.has_edge(v, c)),
                    "{clique:?} extendable by {v}"
                );
            }
        }
        // Distinct.
        let mut sorted = m.cliques.clone();
        sorted.dedup();
        assert_eq!(sorted.len(), m.count());
    }

    #[test]
    fn moon_moser_matches_known_values() {
        assert_eq!(moon_moser_bound(0), 1);
        assert_eq!(moon_moser_bound(1), 1);
        assert_eq!(moon_moser_bound(2), 2);
        assert_eq!(moon_moser_bound(3), 3);
        assert_eq!(moon_moser_bound(4), 4);
        assert_eq!(moon_moser_bound(5), 6);
        assert_eq!(moon_moser_bound(6), 9);
        assert_eq!(moon_moser_bound(9), 27);
        assert_eq!(moon_moser_bound(10), 36);
        // Saturates instead of overflowing.
        assert_eq!(moon_moser_bound(10_000), usize::MAX);
    }

    #[test]
    fn moon_moser_is_attained_by_turan_style_graphs() {
        // The complete tripartite graph K_{2,2,2} has 2·2·2 = 8 maximal
        // cliques = moon_moser_bound(6) is 9... the bound is attained by
        // K_{3,3}-complement-style unions of triangles: 3 disjoint
        // triangles have 3^... Check the extremal case directly: the
        // complement of 3×K2 on 6 vertices (K_{2,2,2}) attains 2³ = 8,
        // while the Moon–Moser graph for n=6 is K_{3,3}̄ → here verify the
        // count never exceeds the bound on random graphs instead.
        use gmc_graph::generators;
        for seed in 0..5 {
            let g = generators::gnp(15, 0.5, seed);
            let m = MaximalCliques::enumerate(&g);
            assert!(m.count() <= moon_moser_bound(15));
        }
    }
}
