//! SIMT execution models for the two depth-first GPU strategies the paper
//! argues against (§II-C), with divergence and utilisation accounting.
//!
//! The paper's case for breadth-first search is architectural: on a GPU,
//! depth-first traversals either
//!
//! * assign one *thread* per subtree (fine-grained) — threads in a warp run
//!   in lockstep, so unequal subtree depths leave lanes idle ("high
//!   divergence and an unbalanced workload"); or
//! * assign one *warp* per branch point (coarse-grained) — the 32 lanes
//!   cooperate on candidate filtering, so whenever the candidate list is
//!   shorter than warp-width most lanes idle ("does not provide enough work
//!   for all threads when the candidate list is shorter than warp-sized").
//!
//! These simulators run the actual searches while charging work to 32-lane
//! warps under lockstep rules, producing the lane-utilisation numbers the
//! paper's argument predicts. They find the correct clique number (they are
//! real searches), so the tests can cross-check them against the oracle
//! while the `warp_divergence` bench compares their utilisation against the
//! breadth-first solver's.

use gmc_graph::{kcore, Csr};

/// Lanes per warp in the CUDA execution model.
pub const WARP_WIDTH: usize = 32;

/// Lane-utilisation accounting for a simulated SIMT execution.
#[derive(Debug, Clone, Copy, Default)]
pub struct SimtReport {
    /// Lockstep steps executed (each costs `WARP_WIDTH` lane-cycles).
    pub steps: u64,
    /// Lane-cycles that performed useful work.
    pub active_lane_cycles: u64,
    /// Fraction of lane-cycles doing useful work (0..=1).
    pub utilization: f64,
}

impl SimtReport {
    fn finalise(steps: u64, active: u64) -> Self {
        let total = steps.saturating_mul(WARP_WIDTH as u64);
        Self {
            steps,
            active_lane_cycles: active,
            utilization: if total == 0 {
                0.0
            } else {
                active as f64 / total as f64
            },
        }
    }
}

/// Result of a simulated SIMT depth-first search.
#[derive(Debug, Clone)]
pub struct SimtDfsResult {
    /// The clique number found (the searches are exact).
    pub clique_number: u32,
    /// One witness maximum clique, sorted ascending.
    pub clique: Vec<u32>,
    /// Lane-utilisation accounting.
    pub report: SimtReport,
}

/// Coarse-grained *warp-parallel* DFS (§II-C): one warp walks the search
/// tree; at every branch point the 32 lanes cooperatively filter the
/// candidate list in warp-sized chunks. Each chunk is one lockstep step;
/// a chunk with fewer than 32 candidates leaves the remaining lanes idle.
pub fn warp_parallel_dfs(graph: &Csr) -> SimtDfsResult {
    let n = graph.num_vertices();
    let mut steps = 0u64;
    let mut active = 0u64;
    let mut best: Vec<u32> = Vec::new();
    if n > 0 && graph.num_edges() > 0 {
        let core = kcore::core_numbers(graph);
        let (order, _) = kcore::degeneracy_order(graph);
        let mut rank = vec![0u32; n];
        for (i, &v) in order.iter().enumerate() {
            rank[v as usize] = i as u32;
        }
        let mut current: Vec<u32> = Vec::new();
        for &v in order.iter().rev() {
            if (core[v as usize] as usize) < best.len() {
                continue;
            }
            let candidates: Vec<u32> = graph
                .neighbors(v)
                .iter()
                .copied()
                .filter(|&u| rank[u as usize] > rank[v as usize])
                .collect();
            current.push(v);
            warp_branch(
                graph,
                &mut current,
                candidates,
                &mut best,
                &mut steps,
                &mut active,
            );
            current.pop();
        }
    } else if n > 0 {
        best = vec![0];
    }
    best.sort_unstable();
    SimtDfsResult {
        clique_number: best.len() as u32,
        clique: best,
        report: SimtReport::finalise(steps, active),
    }
}

fn warp_branch(
    graph: &Csr,
    current: &mut Vec<u32>,
    candidates: Vec<u32>,
    best: &mut Vec<u32>,
    steps: &mut u64,
    active: &mut u64,
) {
    if current.len() + candidates.len() <= best.len() {
        return; // bound: even taking everything cannot beat the incumbent
    }
    if candidates.is_empty() {
        if current.len() > best.len() {
            *best = current.clone();
        }
        return;
    }
    for (i, &v) in candidates.iter().enumerate() {
        if current.len() + (candidates.len() - i) <= best.len() {
            break;
        }
        // The warp filters the remaining candidates against `v` in 32-lane
        // chunks: each chunk is one lockstep step; partial chunks idle the
        // excess lanes. (This is the "warp-cooperative candidate filtering"
        // of VanCompernolle et al. and Jenkins et al.)
        let tail = &candidates[i + 1..];
        let chunks = tail.len().div_ceil(WARP_WIDTH).max(1) as u64;
        *steps += chunks;
        *active += tail.len() as u64;
        let next: Vec<u32> = tail
            .iter()
            .copied()
            .filter(|&u| graph.has_edge(u, v))
            .collect();
        current.push(v);
        warp_branch(graph, current, next, best, steps, active);
        current.pop();
    }
}

/// Fine-grained *thread-parallel* DFS (§II-C): each of the 32 lanes of a
/// warp independently searches the subtree rooted at one vertex. Lanes run
/// in lockstep, so every lane waits for the deepest subtree in its warp;
/// utilisation is the ratio of per-lane work to the per-warp maximum —
/// exactly the workload-imbalance effect Jenkins et al. report.
pub fn thread_parallel_dfs(graph: &Csr) -> SimtDfsResult {
    let n = graph.num_vertices();
    let mut best: Vec<u32> = Vec::new();
    let mut steps = 0u64;
    let mut active = 0u64;
    if n > 0 && graph.num_edges() > 0 {
        let core = kcore::core_numbers(graph);
        let (order, _) = kcore::degeneracy_order(graph);
        let mut rank = vec![0u32; n];
        for (i, &v) in order.iter().enumerate() {
            rank[v as usize] = i as u32;
        }
        // Each root subtree is one lane's job; warps are consecutive groups
        // of 32 roots.
        let roots: Vec<u32> = order.iter().rev().copied().collect();
        for warp in roots.chunks(WARP_WIDTH) {
            let mut lane_work = [0u64; WARP_WIDTH];
            for (lane, &v) in warp.iter().enumerate() {
                if (core[v as usize] as usize) < best.len() {
                    continue; // pruned root: the lane stays idle
                }
                let candidates: Vec<u32> = graph
                    .neighbors(v)
                    .iter()
                    .copied()
                    .filter(|&u| rank[u as usize] > rank[v as usize])
                    .collect();
                let mut current = vec![v];
                let mut work = 0u64;
                lane_branch(graph, &mut current, candidates, &mut best, &mut work);
                lane_work[lane] = work;
            }
            // Lockstep: the warp runs as long as its slowest lane.
            let max_work = lane_work.iter().copied().max().unwrap_or(0);
            steps += max_work;
            active += lane_work.iter().sum::<u64>();
        }
    } else if n > 0 {
        best = vec![0];
    }
    best.sort_unstable();
    SimtDfsResult {
        clique_number: best.len() as u32,
        clique: best,
        report: SimtReport::finalise(steps, active),
    }
}

fn lane_branch(
    graph: &Csr,
    current: &mut Vec<u32>,
    candidates: Vec<u32>,
    best: &mut Vec<u32>,
    work: &mut u64,
) {
    *work += 1; // one node expansion
    if current.len() + candidates.len() <= best.len() {
        return;
    }
    if candidates.is_empty() {
        if current.len() > best.len() {
            *best = current.clone();
        }
        return;
    }
    for (i, &v) in candidates.iter().enumerate() {
        if current.len() + (candidates.len() - i) <= best.len() {
            break;
        }
        *work += candidates.len() as u64 - i as u64 - 1; // filtering cost
        let next: Vec<u32> = candidates[i + 1..]
            .iter()
            .copied()
            .filter(|&u| graph.has_edge(u, v))
            .collect();
        current.push(v);
        lane_branch(graph, current, next, best, work);
        current.pop();
    }
}

/// Lane utilisation of the breadth-first approach under the same lockstep
/// rules: every level launches one lane per candidate entry, so the only
/// idle lanes are the remainder of the final warp of each launch — the
/// "match the parallelism to the problem size at each stage" property the
/// paper credits the data-parallel formulation with (§III-2).
pub fn breadth_first_utilization(level_entries: &[usize]) -> SimtReport {
    let mut steps = 0u64;
    let mut active = 0u64;
    for &entries in level_entries {
        steps += entries.div_ceil(WARP_WIDTH) as u64;
        active += entries as u64;
    }
    SimtReport::finalise(steps, active)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ReferenceEnumerator;
    use gmc_graph::generators;

    #[test]
    fn both_simulators_find_the_clique_number() {
        for seed in 0..6 {
            let g = generators::gnp(60, 0.2, seed);
            let omega = ReferenceEnumerator::clique_number(&g);
            let warp = warp_parallel_dfs(&g);
            let thread = thread_parallel_dfs(&g);
            assert_eq!(warp.clique_number, omega, "warp seed {seed}");
            assert_eq!(thread.clique_number, omega, "thread seed {seed}");
            assert!(g.is_clique(&warp.clique));
            assert!(g.is_clique(&thread.clique));
        }
    }

    #[test]
    fn warp_dfs_underutilises_on_short_candidate_lists() {
        // Sparse graph: candidate lists far below warp width ⇒ most lanes
        // idle (the paper's §II-C point about coarse-grained traversal).
        let g = generators::road_mesh(20, 20, 0.95, 0.05, 3);
        let result = warp_parallel_dfs(&g);
        assert!(
            result.report.utilization < 0.25,
            "expected heavy underutilisation, got {:.2}",
            result.report.utilization
        );
    }

    #[test]
    fn thread_dfs_suffers_load_imbalance_on_skewed_graphs() {
        // A planted clique makes one lane's subtree far deeper than its
        // warp-mates' ⇒ utilisation collapses to roughly 1/WARP_WIDTH.
        let base = generators::gnp(320, 0.02, 5);
        let (g, _) = generators::plant_clique(&base, 12, 6);
        let result = thread_parallel_dfs(&g);
        assert!(
            result.report.utilization < 0.5,
            "expected imbalance, got {:.2}",
            result.report.utilization
        );
    }

    #[test]
    fn breadth_first_fills_warps_at_scale() {
        // Wide levels: only final-warp remainders idle.
        let report = breadth_first_utilization(&[100_000, 50_000, 10_000, 64]);
        assert!(report.utilization > 0.99, "got {:.4}", report.utilization);
        // Tiny levels: the same accounting shows the underutilised tail the
        // paper notes for the early/late iterations.
        let tail = breadth_first_utilization(&[5, 3, 1]);
        assert!(tail.utilization < 0.2);
    }

    #[test]
    fn reports_are_internally_consistent() {
        let g = generators::gnp(50, 0.15, 9);
        for result in [warp_parallel_dfs(&g), thread_parallel_dfs(&g)] {
            let r = result.report;
            assert!(r.active_lane_cycles <= r.steps * WARP_WIDTH as u64);
            assert!((0.0..=1.0).contains(&r.utilization));
        }
    }

    #[test]
    fn degenerate_graphs() {
        let empty = Csr::empty(0);
        assert_eq!(warp_parallel_dfs(&empty).clique_number, 0);
        assert_eq!(thread_parallel_dfs(&empty).clique_number, 0);
        let isolated = Csr::empty(3);
        assert_eq!(warp_parallel_dfs(&isolated).clique_number, 1);
        assert_eq!(thread_parallel_dfs(&isolated).clique_number, 1);
        let report = breadth_first_utilization(&[]);
        assert_eq!(report.utilization, 0.0);
    }
}
