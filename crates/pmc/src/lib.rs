//! # gmc-pmc: depth-first branch-and-bound baselines
//!
//! The paper's main comparison point is Rossi et al.'s Parallel Maximum
//! Clique (PMC), a multithreaded CPU depth-first branch-and-bound solver.
//! No third-party code is used here; this crate implements the same design
//! from scratch:
//!
//! * [`ParallelBranchBound`] — PMC reproduction: k-core preprocessing, a
//!   greedy initial bound, degeneracy-ordered root vertices distributed
//!   across threads (fine-grained thread-parallel subtree search), greedy
//!   colouring upper bounds, and a shared atomic incumbent. Like PMC it
//!   returns *one* maximum clique.
//! * [`ReferenceEnumerator`] — a sequential exact enumerator of *all*
//!   maximum cliques with tie-preserving pruning. It is the oracle every
//!   other solver in this workspace is validated against.
//! * [`MaximalCliques`] — Bron–Kerbosch with pivoting and degeneracy
//!   ordering for the related *maximal* clique enumeration problem the
//!   paper's related work centres on; also a third independent oracle
//!   (maximum cliques = largest maximal cliques).
//! * [`simt`] — lockstep-warp simulations of the fine- and coarse-grained
//!   depth-first GPU strategies the paper rejects (§II-C), with the lane
//!   utilisation accounting that quantifies *why* it rejects them.

#![warn(missing_docs)]

mod maximal;
mod oracle;
mod pbb;
pub mod simt;

pub use maximal::{moon_moser_bound, MaximalCliques};
pub use oracle::ReferenceEnumerator;
pub use pbb::{ParallelBranchBound, PmcResult, PmcStats};
