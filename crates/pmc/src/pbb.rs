//! PMC-style parallel depth-first branch and bound (Rossi et al., the
//! paper's CPU comparison baseline).

use gmc_graph::{kcore, Csr};
use gmc_trace::Tracer;
use std::sync::atomic::{AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Counters from a [`ParallelBranchBound`] run.
#[derive(Debug, Clone, Copy, Default)]
pub struct PmcStats {
    /// Branch-and-bound tree nodes expanded across all threads.
    pub nodes_explored: u64,
    /// Root subtrees skipped entirely by the core-number bound.
    pub roots_pruned: u64,
    /// Wall time of the search (excludes graph construction).
    pub total_time: Duration,
    /// The greedy initial lower bound.
    pub initial_bound: u32,
    /// Threads used.
    pub threads: usize,
}

/// Result of a [`ParallelBranchBound`] run: one maximum clique (PMC does not
/// enumerate ties).
#[derive(Debug, Clone)]
pub struct PmcResult {
    /// The clique number ω(G).
    pub clique_number: u32,
    /// One witness maximum clique, sorted ascending.
    pub clique: Vec<u32>,
    /// Search counters.
    pub stats: PmcStats,
}

/// Multithreaded depth-first branch-and-bound maximum clique solver.
///
/// The design follows Rossi et al.'s PMC, the implementation the paper
/// benchmarks against:
///
/// * k-core decomposition; vertices with `core + 1 ≤ ω̄` are pruned.
/// * A greedy heuristic seeds the incumbent bound (and witness).
/// * Root vertices are processed in reverse degeneracy order; each root's
///   candidate set is its forward neighborhood in that order, so every
///   clique is explored from its lowest-ranked vertex only.
/// * Roots are distributed dynamically over threads via an atomic cursor —
///   the "fine-grained thread-parallel traversal" of the paper's related
///   work discussion.
/// * Subtrees are pruned with greedy-colouring upper bounds (Tomita-style)
///   against a shared atomic incumbent.
#[derive(Debug, Clone)]
pub struct ParallelBranchBound {
    threads: usize,
    tracer: Tracer,
}

impl ParallelBranchBound {
    /// A solver using `threads` OS threads (minimum 1).
    pub fn new(threads: usize) -> Self {
        Self {
            threads: threads.max(1),
            tracer: Tracer::disabled(),
        }
    }

    /// Installs a recording tracer: each solve is wrapped in a `pmc_solve`
    /// span carrying the node and pruning counters.
    pub fn trace(mut self, tracer: Tracer) -> Self {
        self.tracer = tracer;
        self
    }

    /// A solver sized to the machine's available parallelism.
    pub fn with_default_parallelism() -> Self {
        let n = std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(4);
        Self::new(n)
    }

    /// Number of threads this solver will use.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Finds one maximum clique of `graph`.
    pub fn solve(&self, graph: &Csr) -> PmcResult {
        let mut solve_span = self.tracer.is_enabled().then(|| {
            self.tracer.span_with(
                "pmc_solve",
                &[
                    ("vertices", graph.num_vertices() as i64),
                    ("edges", graph.num_edges() as i64),
                    ("threads", self.threads as i64),
                ],
            )
        });
        let result = self.solve_inner(graph);
        if let Some(span) = solve_span.as_mut() {
            span.arg("clique_number", i64::from(result.clique_number));
            span.arg("nodes_explored", result.stats.nodes_explored as i64);
            span.arg("roots_pruned", result.stats.roots_pruned as i64);
        }
        result
    }

    fn solve_inner(&self, graph: &Csr) -> PmcResult {
        let start = Instant::now();
        let n = graph.num_vertices();
        if n == 0 {
            return PmcResult {
                clique_number: 0,
                clique: Vec::new(),
                stats: PmcStats {
                    threads: self.threads,
                    total_time: start.elapsed(),
                    ..PmcStats::default()
                },
            };
        }
        if graph.num_edges() == 0 {
            return PmcResult {
                clique_number: 1,
                clique: vec![0],
                stats: PmcStats {
                    threads: self.threads,
                    initial_bound: 1,
                    total_time: start.elapsed(),
                    ..PmcStats::default()
                },
            };
        }

        let core = kcore::core_numbers(graph);
        let (order, _) = kcore::degeneracy_order(graph);
        // rank[v] = position of v in the degeneracy order.
        let mut rank = vec![0u32; n];
        for (i, &v) in order.iter().enumerate() {
            rank[v as usize] = i as u32;
        }

        // Greedy heuristic along descending core numbers (degree as the
        // tie-break — core numbers tie across whole subgraphs) for the
        // initial incumbent (Rossi's heuristic step).
        let heuristic_keys: Vec<u32> = (0..n as u32)
            .map(|v| (core[v as usize].min(0xF_FFFF) << 12) | (graph.degree(v) as u32).min(0xFFF))
            .collect();
        let initial = greedy_clique(graph, &core, &heuristic_keys);
        let best_size = AtomicU32::new(initial.len() as u32);
        let best_clique = Mutex::new(initial.clone());

        let cursor = AtomicUsize::new(0);
        let nodes = AtomicU64::new(0);
        let roots_pruned = AtomicU64::new(0);

        // Cost-aware LPT ordering for the dynamic root cursor: a subtree's
        // work scales with the forward neighborhood its branch starts from,
        // so the heaviest roots are claimed first and the claim loop's tail
        // stays short (the same decompose-by-cost idea behind gmc-dpp's
        // weighted launches). The composite key is unique per vertex, so
        // the ordering — the decomposition — is a pure function of the
        // graph; only the thread-to-root assignment is dynamic. Ties fall
        // back to reverse degeneracy order, keeping the densest region
        // first to improve the incumbent early.
        let forward_degree: Vec<u32> = (0..n as u32)
            .map(|v| {
                graph
                    .neighbors(v)
                    .iter()
                    .filter(|&&u| rank[u as usize] > rank[v as usize])
                    .count() as u32
            })
            .collect();
        let mut roots: Vec<u32> = order.iter().rev().copied().collect();
        roots.sort_unstable_by_key(|&v| {
            std::cmp::Reverse((forward_degree[v as usize], rank[v as usize]))
        });

        std::thread::scope(|scope| {
            for _ in 0..self.threads {
                scope.spawn(|| {
                    let mut local_nodes = 0u64;
                    let mut local_roots_pruned = 0u64;
                    let mut current: Vec<u32> = Vec::new();
                    loop {
                        let idx = cursor.fetch_add(1, Ordering::Relaxed);
                        if idx >= roots.len() {
                            break;
                        }
                        let v = roots[idx];
                        let bound = best_size.load(Ordering::Relaxed);
                        // Core-number bound: v cannot start a clique larger
                        // than core(v) + 1.
                        if core[v as usize] < bound {
                            local_roots_pruned += 1;
                            continue;
                        }
                        // Forward neighborhood in degeneracy order, pruned
                        // by core numbers.
                        let candidates: Vec<u32> = graph
                            .neighbors(v)
                            .iter()
                            .copied()
                            .filter(|&u| {
                                rank[u as usize] > rank[v as usize] && core[u as usize] >= bound
                            })
                            .collect();
                        current.clear();
                        current.push(v);
                        branch(
                            graph,
                            &mut current,
                            candidates,
                            &best_size,
                            &best_clique,
                            &mut local_nodes,
                        );
                    }
                    nodes.fetch_add(local_nodes, Ordering::Relaxed);
                    roots_pruned.fetch_add(local_roots_pruned, Ordering::Relaxed);
                });
            }
        });

        let mut clique = best_clique.into_inner().expect("lock poisoned");
        clique.sort_unstable();
        debug_assert!(graph.is_clique(&clique));
        PmcResult {
            clique_number: clique.len() as u32,
            clique,
            stats: PmcStats {
                nodes_explored: nodes.into_inner(),
                roots_pruned: roots_pruned.into_inner(),
                total_time: start.elapsed(),
                initial_bound: initial.len() as u32,
                threads: self.threads,
            },
        }
    }
}

/// Rossi-style initial heuristic: a greedy clique grown inside each
/// vertex's neighborhood (highest core number first within the
/// neighborhood), seeded from every vertex whose core number can still beat
/// the incumbent. This is the heuristic PMC's `heu_strat` implements; the
/// paper measures its mean error at 2.5%, the best of the options compared
/// in Table I.
fn greedy_clique(graph: &Csr, core: &[u32], key: &[u32]) -> Vec<u32> {
    let n = graph.num_vertices();
    let mut seeds: Vec<u32> = (0..n as u32).collect();
    seeds.sort_unstable_by_key(|&v| (std::cmp::Reverse(key[v as usize]), v));
    let mut best: Vec<u32> = Vec::new();
    for &seed in &seeds {
        // Core bound: the largest clique containing `seed` has at most
        // core(seed) + 1 vertices.
        if (core[seed as usize] as usize + 1) <= best.len() {
            continue;
        }
        let mut clique = vec![seed];
        let mut candidates: Vec<u32> = graph.neighbors(seed).to_vec();
        candidates.sort_unstable_by_key(|&u| (std::cmp::Reverse(key[u as usize]), u));
        while let Some((&v, rest)) = candidates.split_first() {
            clique.push(v);
            candidates = rest
                .iter()
                .copied()
                .filter(|&u| graph.has_edge(u, v))
                .collect();
        }
        if clique.len() > best.len() {
            best = clique;
        }
    }
    best
}

/// Tomita-style branch: greedily colour the candidates, then expand in
/// descending colour order, cutting when `|C| + colour` cannot beat the
/// incumbent.
fn branch(
    graph: &Csr,
    current: &mut Vec<u32>,
    candidates: Vec<u32>,
    best_size: &AtomicU32,
    best_clique: &Mutex<Vec<u32>>,
    nodes: &mut u64,
) {
    *nodes += 1;
    if candidates.is_empty() {
        let size = current.len() as u32;
        // fetch_max tells us whether we strictly improved the incumbent.
        if best_size.fetch_max(size, Ordering::Relaxed) < size {
            let mut guard = best_clique.lock().expect("lock poisoned");
            // Re-check under the lock: another thread may have found an even
            // larger clique between the fetch_max and here.
            if guard.len() < current.len() {
                *guard = current.clone();
            }
        }
        return;
    }

    // Greedy colouring: colour[i] is an upper bound on the clique size
    // within candidates[..=i] (classes are independent sets).
    let (ordered, colors) = color_sort(graph, candidates);

    let mut live: Vec<u32> = ordered;
    // Process highest colour first.
    for i in (0..live.len()).rev() {
        let bound = best_size.load(Ordering::Relaxed);
        if current.len() as u32 + colors[i] <= bound {
            // Neither this candidate nor any earlier one can beat the
            // incumbent (colours are non-decreasing in i).
            return;
        }
        let v = live[i];
        current.push(v);
        let next: Vec<u32> = live[..i]
            .iter()
            .copied()
            .filter(|&u| graph.has_edge(u, v))
            .collect();
        branch(graph, current, next, best_size, best_clique, nodes);
        current.pop();
        live.truncate(i); // v is fully explored; drop it from later branches
    }
}

/// Greedy colour assignment: returns candidates reordered by ascending
/// colour together with each position's colour (1-based).
fn color_sort(graph: &Csr, candidates: Vec<u32>) -> (Vec<u32>, Vec<u32>) {
    let mut classes: Vec<Vec<u32>> = Vec::new();
    for &v in &candidates {
        let mut placed = false;
        for class in classes.iter_mut() {
            if class.iter().all(|&u| !graph.has_edge(u, v)) {
                class.push(v);
                placed = true;
                break;
            }
        }
        if !placed {
            classes.push(vec![v]);
        }
    }
    let mut ordered = Vec::with_capacity(candidates.len());
    let mut colors = Vec::with_capacity(candidates.len());
    for (c, class) in classes.iter().enumerate() {
        for &v in class {
            ordered.push(v);
            colors.push(c as u32 + 1);
        }
    }
    (ordered, colors)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ReferenceEnumerator;
    use gmc_graph::generators;

    #[test]
    fn finds_maximum_on_small_graphs() {
        let g = Csr::from_edges(4, &[(0, 1), (1, 2), (0, 2), (2, 3)]);
        let r = ParallelBranchBound::new(2).solve(&g);
        assert_eq!(r.clique_number, 3);
        assert_eq!(r.clique, vec![0, 1, 2]);
    }

    #[test]
    fn matches_oracle_on_random_graphs() {
        for seed in 0..10 {
            let g = generators::gnp(80, 0.2, seed);
            let (omega, cliques) = ReferenceEnumerator::enumerate(&g);
            let r = ParallelBranchBound::new(4).solve(&g);
            assert_eq!(r.clique_number, omega, "seed {seed}");
            assert!(
                cliques.contains(&r.clique),
                "seed {seed}: witness not maximum"
            );
        }
    }

    #[test]
    fn matches_oracle_on_structured_graphs() {
        let graphs = [
            generators::complete(10),
            generators::barabasi_albert(150, 4, 3),
            generators::collaboration(120, 40, 3, 7, 1.8, 4),
            generators::road_mesh(12, 12, 0.9, 0.1, 5),
        ];
        for (i, g) in graphs.iter().enumerate() {
            let omega = ReferenceEnumerator::clique_number(g);
            let r = ParallelBranchBound::new(3).solve(g);
            assert_eq!(r.clique_number, omega, "graph {i}");
            assert!(g.is_clique(&r.clique));
        }
    }

    #[test]
    fn thread_counts_agree() {
        let g = generators::gnp(100, 0.15, 11);
        let single = ParallelBranchBound::new(1).solve(&g);
        for threads in [2, 8] {
            let multi = ParallelBranchBound::new(threads).solve(&g);
            assert_eq!(multi.clique_number, single.clique_number);
        }
    }

    #[test]
    fn planted_clique_is_found() {
        let base = generators::gnp(200, 0.05, 13);
        let (g, members) = generators::plant_clique(&base, 12, 14);
        let r = ParallelBranchBound::new(4).solve(&g);
        assert_eq!(r.clique_number as usize, members.len());
        assert_eq!(r.clique, members);
    }

    #[test]
    fn edge_cases() {
        let r = ParallelBranchBound::new(2).solve(&Csr::empty(0));
        assert_eq!(r.clique_number, 0);
        let r = ParallelBranchBound::new(2).solve(&Csr::empty(4));
        assert_eq!(r.clique_number, 1);
        let r = ParallelBranchBound::new(2).solve(&Csr::from_edges(2, &[(0, 1)]));
        assert_eq!(r.clique_number, 2);
    }

    #[test]
    fn stats_are_recorded() {
        let g = generators::gnp(60, 0.25, 15);
        let r = ParallelBranchBound::new(2).solve(&g);
        assert!(r.stats.initial_bound >= 2);
        assert!(r.stats.initial_bound <= r.clique_number);
        assert_eq!(r.stats.threads, 2);
    }

    #[test]
    fn coloring_is_a_proper_bound() {
        let g = generators::gnp(40, 0.4, 17);
        let candidates: Vec<u32> = (0..40).collect();
        let (ordered, colors) = color_sort(&g, candidates);
        // Same-colour vertices must be pairwise non-adjacent.
        for i in 0..ordered.len() {
            for j in (i + 1)..ordered.len() {
                if colors[i] == colors[j] {
                    assert!(!g.has_edge(ordered[i], ordered[j]));
                }
            }
        }
        // Colours are non-decreasing.
        assert!(colors.windows(2).all(|w| w[0] <= w[1]));
    }
}
