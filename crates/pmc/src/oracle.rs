//! Sequential exact maximum clique enumeration — the correctness oracle.

use gmc_graph::{Csr, EdgeOracle};

/// Exhaustive enumerator of all maximum cliques.
///
/// The search visits each clique exactly once as an ascending vertex
/// sequence; pruning uses the simple `|C| + |P| < best` bound with ties kept
/// so the complete set of maximum cliques survives. Intended for modest
/// graphs (the test corpus), where it is fast enough to cross-check every
/// other solver.
#[derive(Debug, Default, Clone, Copy)]
pub struct ReferenceEnumerator;

impl ReferenceEnumerator {
    /// Enumerates all maximum cliques of `graph`. Returns the clique number
    /// and the cliques in canonical order (each sorted ascending, the list
    /// sorted lexicographically).
    pub fn enumerate(graph: &Csr) -> (u32, Vec<Vec<u32>>) {
        Self::enumerate_with(graph, graph)
    }

    /// Like [`ReferenceEnumerator::enumerate`], but answers every adjacency
    /// test through `oracle` instead of the CSR — e.g. a persistent
    /// [`gmc_graph::CoreBitmap`] covering the whole graph, so the oracle
    /// path itself can be cross-checked bit for bit.
    pub fn enumerate_with<O: EdgeOracle + ?Sized>(graph: &Csr, oracle: &O) -> (u32, Vec<Vec<u32>>) {
        let n = graph.num_vertices();
        if n == 0 {
            return (0, Vec::new());
        }
        if graph.num_edges() == 0 {
            return (1, (0..n as u32).map(|v| vec![v]).collect());
        }
        let mut best = 0usize;
        let mut found: Vec<Vec<u32>> = Vec::new();
        let mut current: Vec<u32> = Vec::new();
        let candidates: Vec<u32> = (0..n as u32).collect();
        Self::branch(oracle, &mut current, &candidates, &mut best, &mut found);
        for clique in &mut found {
            clique.sort_unstable();
        }
        found.sort();
        (best as u32, found)
    }

    /// The clique number alone.
    pub fn clique_number(graph: &Csr) -> u32 {
        Self::enumerate(graph).0
    }

    fn branch<O: EdgeOracle + ?Sized>(
        oracle: &O,
        current: &mut Vec<u32>,
        candidates: &[u32],
        best: &mut usize,
        found: &mut Vec<Vec<u32>>,
    ) {
        if candidates.is_empty() {
            // Record ties; reset on strict improvement.
            match current.len().cmp(best) {
                std::cmp::Ordering::Greater => {
                    *best = current.len();
                    found.clear();
                    found.push(current.clone());
                }
                std::cmp::Ordering::Equal if !current.is_empty() => {
                    found.push(current.clone());
                }
                _ => {}
            }
            return;
        }
        for (i, &v) in candidates.iter().enumerate() {
            // Tie-preserving bound: even taking every remaining candidate
            // cannot reach the incumbent size.
            if current.len() + (candidates.len() - i) < *best {
                break;
            }
            current.push(v);
            let next: Vec<u32> = candidates[i + 1..]
                .iter()
                .copied()
                .filter(|&u| oracle.connected(u, v))
                .collect();
            Self::branch(oracle, current, &next, best, found);
            current.pop();
        }
        // A node whose forward candidates all fail to extend is handled by
        // the recursive calls; the clique `current` itself is only maximal
        // when `candidates` is empty, which the top of the function records.
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gmc_graph::generators;

    #[test]
    fn triangle_plus_tail() {
        let g = Csr::from_edges(4, &[(0, 1), (1, 2), (0, 2), (2, 3)]);
        let (omega, cliques) = ReferenceEnumerator::enumerate(&g);
        assert_eq!(omega, 3);
        assert_eq!(cliques, vec![vec![0, 1, 2]]);
    }

    #[test]
    fn enumerates_ties() {
        let g = Csr::from_edges(6, &[(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)]);
        let (omega, cliques) = ReferenceEnumerator::enumerate(&g);
        assert_eq!(omega, 3);
        assert_eq!(cliques, vec![vec![0, 1, 2], vec![3, 4, 5]]);
    }

    #[test]
    fn complete_graph() {
        let g = generators::complete(8);
        let (omega, cliques) = ReferenceEnumerator::enumerate(&g);
        assert_eq!(omega, 8);
        assert_eq!(cliques.len(), 1);
    }

    #[test]
    fn cycle_of_five_has_five_maximum_edges() {
        let g = Csr::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)]);
        let (omega, cliques) = ReferenceEnumerator::enumerate(&g);
        assert_eq!(omega, 2);
        assert_eq!(cliques.len(), 5);
    }

    #[test]
    fn edge_cases() {
        assert_eq!(ReferenceEnumerator::enumerate(&Csr::empty(0)), (0, vec![]));
        let (omega, cliques) = ReferenceEnumerator::enumerate(&Csr::empty(3));
        assert_eq!(omega, 1);
        assert_eq!(cliques.len(), 3);
    }

    #[test]
    fn enumerate_with_core_bitmap_matches_csr_path() {
        // An all-kept persistent core bitmap must drive the enumerator to
        // the identical clique set the CSR adjacency produces.
        let g = generators::gnp(60, 0.2, 91);
        let exec = gmc_dpp::Executor::new(2);
        let keep = vec![true; g.num_vertices()];
        let core = gmc_graph::CoreBitmap::try_build(&exec, &g, &keep)
            .unwrap_or_else(|_| panic!("building the core bitmap on a fault-free executor"));
        assert_eq!(
            ReferenceEnumerator::enumerate_with(&g, &core),
            ReferenceEnumerator::enumerate(&g)
        );
    }

    #[test]
    fn brute_force_agreement_on_small_random_graphs() {
        // Compare against an independent bitmask brute force on ≤ 16
        // vertices.
        let mut rng = gmc_dpp::Rng::seed_from_u64(7);
        for _ in 0..30 {
            let n = rng.gen_range(2usize..14);
            let mut edges = Vec::new();
            for u in 0..n as u32 {
                for v in (u + 1)..n as u32 {
                    if rng.gen_bool(0.4) {
                        edges.push((u, v));
                    }
                }
            }
            let g = Csr::from_edges(n, &edges);
            let (omega, cliques) = ReferenceEnumerator::enumerate(&g);
            let (bf_omega, bf_cliques) = brute_force(&g);
            assert_eq!(omega, bf_omega);
            assert_eq!(cliques, bf_cliques);
        }
    }

    fn brute_force(g: &Csr) -> (u32, Vec<Vec<u32>>) {
        let n = g.num_vertices();
        let mut best = 0u32;
        let mut found: Vec<Vec<u32>> = Vec::new();
        for mask in 1u32..(1 << n) {
            let members: Vec<u32> = (0..n as u32).filter(|v| mask & (1 << v) != 0).collect();
            if !g.is_clique(&members) {
                continue;
            }
            let size = members.len() as u32;
            match size.cmp(&best) {
                std::cmp::Ordering::Greater => {
                    best = size;
                    found = vec![members];
                }
                std::cmp::Ordering::Equal => found.push(members),
                std::cmp::Ordering::Less => {}
            }
        }
        found.sort();
        (best, found)
    }
}
