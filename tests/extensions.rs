//! Integration tests for the features beyond the paper's implementation:
//! edge oracles, recursive windowing, Moon–Moser auto sizing, the colouring
//! sublist bound, witness polishing, Bron–Kerbosch cross-checks, SIMT
//! simulators and result verification — all validated against the oracle on
//! corpus data.

use gpu_max_clique::corpus::{corpus, Tier};
use gpu_max_clique::graph::generators;
use gpu_max_clique::mce::{verify_result, SublistBound, WindowConfig};
use gpu_max_clique::pmc::{simt, MaximalCliques, ReferenceEnumerator};
use gpu_max_clique::prelude::*;

fn solver() -> MaxCliqueSolver {
    MaxCliqueSolver::new(Device::unlimited())
}

#[test]
fn edge_oracles_agree_across_corpus_sample() {
    for spec in corpus(Tier::Smoke).into_iter().step_by(6) {
        let graph = spec.load();
        let reference = solver().solve(&graph).unwrap();
        for kind in [
            EdgeIndexKind::Bitset,
            EdgeIndexKind::Hash,
            EdgeIndexKind::Auto,
        ] {
            let result = solver().edge_index(kind).solve(&graph).unwrap();
            assert_eq!(result.cliques, reference.cliques, "{} {kind:?}", spec.name);
        }
    }
}

#[test]
fn recursive_windowing_solves_under_starved_budgets() {
    for spec in corpus(Tier::Smoke).into_iter().step_by(8) {
        let graph = spec.load();
        let reference = solver().solve(&graph).unwrap();
        // A budget of 2 KiB forces splits/recursions on most datasets.
        let device = Device::with_memory_budget(2 * 1024);
        let result = MaxCliqueSolver::new(device)
            .heuristic(HeuristicKind::SingleDegree)
            .windowed(WindowConfig::with_size(64).recursive(12))
            .solve(&graph);
        match result {
            Ok(r) => {
                assert_eq!(r.clique_number, reference.clique_number, "{}", spec.name);
                assert!(graph.is_clique(&r.cliques[0]), "{}", spec.name);
            }
            Err(_) => {
                // Some instances genuinely exceed 2 KiB even one sublist at
                // a time (the heuristic scratch alone can). Never wrong,
                // though.
            }
        }
    }
}

#[test]
fn auto_window_sizing_matches_fixed_size_results() {
    for spec in corpus(Tier::Smoke).into_iter().step_by(10) {
        let graph = spec.load();
        let reference = solver().solve(&graph).unwrap();
        let result = solver()
            .windowed(WindowConfig {
                enumerate_all: true,
                ..WindowConfig::auto()
            })
            .solve(&graph)
            .unwrap();
        assert_eq!(
            result.clique_number, reference.clique_number,
            "{}",
            spec.name
        );
        assert_eq!(result.cliques, reference.cliques, "{}", spec.name);
    }
}

#[test]
fn coloring_bound_preserves_results_on_corpus_sample() {
    for spec in corpus(Tier::Smoke).into_iter().step_by(7) {
        let graph = spec.load();
        let reference = solver().solve(&graph).unwrap();
        let colored = solver()
            .sublist_bound(SublistBound::Coloring)
            .solve(&graph)
            .unwrap();
        assert_eq!(colored.cliques, reference.cliques, "{}", spec.name);
        assert!(
            colored.stats.setup.initial_entries <= reference.stats.setup.initial_entries,
            "{}",
            spec.name
        );
    }
}

#[test]
fn bron_kerbosch_agrees_with_bfs_on_corpus_sample() {
    for spec in corpus(Tier::Smoke).into_iter().step_by(9) {
        let graph = spec.load();
        let bfs = solver().solve(&graph).unwrap();
        let maximal = MaximalCliques::enumerate(&graph);
        assert_eq!(maximal.clique_number(), bfs.clique_number, "{}", spec.name);
        assert_eq!(maximal.maximum_cliques(), bfs.cliques, "{}", spec.name);
    }
}

#[test]
fn simt_simulators_find_omega_on_corpus_sample() {
    for spec in corpus(Tier::Smoke).into_iter().step_by(11) {
        let graph = spec.load();
        let omega = ReferenceEnumerator::clique_number(&graph);
        assert_eq!(
            simt::warp_parallel_dfs(&graph).clique_number,
            omega,
            "{}",
            spec.name
        );
        assert_eq!(
            simt::thread_parallel_dfs(&graph).clique_number,
            omega,
            "{}",
            spec.name
        );
    }
}

#[test]
fn verification_passes_on_every_solver_mode() {
    let graph = generators::gnp(90, 0.15, 3);
    let configurations: Vec<MaxCliqueSolver> = vec![
        solver(),
        solver().heuristic(HeuristicKind::None),
        solver().polish_witness(true),
        solver().sublist_bound(SublistBound::Coloring),
        solver().edge_index(EdgeIndexKind::Bitset),
        solver().windowed(WindowConfig {
            size: 16,
            enumerate_all: true,
            ..WindowConfig::default()
        }),
        solver().windowed(WindowConfig::with_size(8).recursive(4)),
    ];
    for (i, s) in configurations.iter().enumerate() {
        let result = s.solve(&graph).unwrap();
        verify_result(&graph, &result).unwrap_or_else(|e| panic!("config {i}: {e}"));
    }
}

#[test]
fn polishing_never_hurts_and_regrows_truncated_witnesses() {
    // The greedy heuristics already return maximal cliques, so direct
    // growth rarely fires at solver level; the guarantee to test is
    // (a) results are unchanged and the bound never drops, and (b) the
    // polish pass restores maximality from any partial clique.
    for seed in 0..6 {
        let base = generators::gnp(200, 0.04, seed);
        let (graph, members) = generators::plant_clique(&base, 10, seed + 60);
        let plain = solver()
            .heuristic(HeuristicKind::SingleDegree)
            .solve(&graph)
            .unwrap();
        let polished = solver()
            .heuristic(HeuristicKind::SingleDegree)
            .polish_witness(true)
            .solve(&graph)
            .unwrap();
        assert_eq!(polished.cliques, plain.cliques, "seed {seed}");
        assert!(
            polished.stats.lower_bound >= plain.stats.lower_bound,
            "seed {seed}"
        );

        // (b): half the planted clique regrows to at least full size.
        let mut partial: Vec<u32> = members[..5].to_vec();
        gpu_max_clique::heuristic::polish_clique(&graph, &mut partial);
        assert!(
            partial.len() >= 10,
            "seed {seed}: regrew only to {}",
            partial.len()
        );
        assert!(graph.is_clique(&partial));
    }
}

#[test]
fn device_is_safely_shareable_across_threads() {
    // One device, several solver threads: accounting and results must stay
    // coherent under concurrency.
    let device = Device::new(2, usize::MAX);
    let graphs: Vec<_> = (0..6).map(|seed| generators::gnp(60, 0.15, seed)).collect();
    let expected: Vec<u32> = graphs
        .iter()
        .map(ReferenceEnumerator::clique_number)
        .collect();
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for (graph, &omega) in graphs.iter().zip(&expected) {
            let device = device.clone();
            handles.push(scope.spawn(move || {
                let result = MaxCliqueSolver::new(device).solve(graph).unwrap();
                assert_eq!(result.clique_number, omega);
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
    });
    assert_eq!(device.memory().live(), 0, "shared device leaked charges");
}
