//! End-to-end tests of the `gmc` command-line binary.

use std::process::Command;

fn gmc() -> Command {
    Command::new(env!("CARGO_BIN_EXE_gmc"))
}

fn write_graph(name: &str, contents: &str) -> std::path::PathBuf {
    let path = std::env::temp_dir().join(name);
    std::fs::write(&path, contents).expect("write temp graph");
    path
}

#[test]
fn help_lists_commands() {
    let out = gmc().arg("help").output().expect("run gmc");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("gmc solve"));
    assert!(text.contains("gmc generate"));
}

#[test]
fn unknown_command_fails() {
    let out = gmc().arg("frobnicate").output().expect("run gmc");
    assert!(!out.status.success());
}

#[test]
fn solve_edge_list() {
    let path = write_graph("gmc_cli_tri.edges", "0 1\n1 2\n0 2\n2 3\n");
    let out = gmc().arg("solve").arg(&path).output().expect("run gmc");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("clique number ω = 3"), "{text}");
    assert!(text.contains("[0, 1, 2]"));
    std::fs::remove_file(&path).ok();
}

#[test]
fn solve_mtx_with_json_output() {
    let path = write_graph(
        "gmc_cli_tri.mtx",
        "%%MatrixMarket matrix coordinate pattern symmetric\n3 3 3\n2 1\n3 1\n3 2\n",
    );
    let out = gmc()
        .args(["solve", path.to_str().unwrap(), "--json"])
        .output()
        .expect("run gmc");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("\"clique_number\":3"), "{text}");
    assert!(text.contains("\"complete\":true"));
    std::fs::remove_file(&path).ok();
}

#[test]
fn solve_windowed_with_options() {
    let path = write_graph("gmc_cli_two_tri.edges", "0 1\n1 2\n0 2\n3 4\n4 5\n3 5\n");
    let out = gmc()
        .args([
            "solve",
            path.to_str().unwrap(),
            "--window",
            "2",
            "--recursive",
            "3",
            "--parallel-windows",
            "2",
            "--window-order",
            "asc",
            "--heuristic",
            "single-degree",
        ])
        .output()
        .expect("run gmc");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("clique number ω = 3"), "{text}");
    assert!(text.contains("windowed:"));
    std::fs::remove_file(&path).ok();
}

#[test]
fn oom_produces_hint_not_wrong_answer() {
    // A dense-ish graph with a 1 MiB... 16 KiB budget triggers the OOM path.
    let mut edges = String::new();
    for u in 0..60u32 {
        for v in (u + 1)..60 {
            if (u + v) % 2 == 0 {
                edges.push_str(&format!("{u} {v}\n"));
            }
        }
    }
    let path = write_graph("gmc_cli_dense.edges", &edges);
    let out = gmc()
        .args([
            "solve",
            path.to_str().unwrap(),
            "--heuristic",
            "none",
            "--budget-mb",
            "0",
        ])
        .output()
        .expect("run gmc");
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("out of device memory"), "{err}");
    assert!(err.contains("--window"), "hint missing: {err}");
    std::fs::remove_file(&path).ok();
}

#[test]
fn info_reports_statistics() {
    let path = write_graph("gmc_cli_info.edges", "0 1\n1 2\n0 2\n");
    let out = gmc().arg("info").arg(&path).output().expect("run gmc");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("vertices:     3"));
    assert!(text.contains("degeneracy:   2"));
    std::fs::remove_file(&path).ok();
}

#[test]
fn generate_then_solve_roundtrip() {
    let path = std::env::temp_dir().join("gmc_cli_generated.edges");
    let out = gmc()
        .args([
            "generate",
            "collab",
            "--out",
            path.to_str().unwrap(),
            "--param",
            "authors=200",
            "--param",
            "papers=80",
            "--param",
            "max=7",
            "--param",
            "seed=3",
        ])
        .output()
        .expect("run gmc");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    let out = gmc()
        .args(["solve", path.to_str().unwrap(), "--json"])
        .output()
        .expect("run gmc");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("\"clique_number\":"), "{text}");
    std::fs::remove_file(&path).ok();
}

#[test]
fn edge_index_flag_accepted() {
    let path = write_graph("gmc_cli_ei.edges", "0 1\n1 2\n0 2\n");
    for kind in ["bin", "bitset", "hash", "auto"] {
        let out = gmc()
            .args([
                "solve",
                path.to_str().unwrap(),
                "--edge-index",
                kind,
                "--json",
            ])
            .output()
            .expect("run gmc");
        assert!(out.status.success(), "{kind}");
        assert!(String::from_utf8_lossy(&out.stdout).contains("\"clique_number\":3"));
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn missing_file_is_a_clean_error() {
    let out = gmc()
        .args(["solve", "/no/such/file.edges"])
        .output()
        .expect("run gmc");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("cannot load"));
}
