//! Cross-solver correctness: the breadth-first enumerator, the windowed
//! variants, the PMC baseline and the sequential oracle must agree on every
//! smoke-tier corpus dataset and on batches of random graphs.

use gpu_max_clique::corpus::{corpus, Tier};
use gpu_max_clique::graph::{generators, Csr};
use gpu_max_clique::heuristic::HeuristicKind;
use gpu_max_clique::mce::{
    CandidateOrder, MaxCliqueSolver, OrientationRule, WindowConfig, WindowOrdering,
};
use gpu_max_clique::pmc::{ParallelBranchBound, ReferenceEnumerator};
use gpu_max_clique::prelude::Device;

fn solver() -> MaxCliqueSolver {
    MaxCliqueSolver::new(Device::unlimited())
}

#[test]
fn bfs_matches_oracle_on_entire_smoke_corpus() {
    for spec in corpus(Tier::Smoke) {
        let graph = spec.load();
        let (omega, cliques) = ReferenceEnumerator::enumerate(&graph);
        let result = solver()
            .solve(&graph)
            .unwrap_or_else(|e| panic!("{}: {e}", spec.name));
        assert_eq!(result.clique_number, omega, "{}: clique number", spec.name);
        assert_eq!(result.cliques, cliques, "{}: clique sets", spec.name);
        assert!(result.complete_enumeration);
    }
}

#[test]
fn pmc_matches_oracle_on_entire_smoke_corpus() {
    let pmc = ParallelBranchBound::new(2);
    for spec in corpus(Tier::Smoke) {
        let graph = spec.load();
        let omega = ReferenceEnumerator::clique_number(&graph);
        let result = pmc.solve(&graph);
        assert_eq!(result.clique_number, omega, "{}", spec.name);
        assert!(graph.is_clique(&result.clique), "{}", spec.name);
    }
}

#[test]
fn all_heuristics_and_orders_agree_on_random_graphs() {
    for seed in 0..6 {
        let graph = generators::gnp(70, 0.15, seed);
        let (omega, cliques) = ReferenceEnumerator::enumerate(&graph);
        for heuristic in HeuristicKind::all() {
            for orientation in [OrientationRule::Degree, OrientationRule::Index] {
                for order in [CandidateOrder::Index, CandidateOrder::DegreeAscending] {
                    let result = solver()
                        .heuristic(heuristic)
                        .orientation(orientation)
                        .candidate_order(order)
                        .solve(&graph)
                        .unwrap();
                    assert_eq!(
                        result.clique_number, omega,
                        "seed {seed} {heuristic} {orientation:?} {order:?}"
                    );
                    assert_eq!(
                        result.cliques, cliques,
                        "seed {seed} {heuristic} {orientation:?} {order:?}"
                    );
                }
            }
        }
    }
}

#[test]
fn windowed_enumeration_matches_oracle_on_random_graphs() {
    for seed in 10..16 {
        let graph = generators::gnp(60, 0.2, seed);
        let (omega, cliques) = ReferenceEnumerator::enumerate(&graph);
        for size in [4, 32, 1 << 20] {
            for ordering in [
                WindowOrdering::Index,
                WindowOrdering::DegreeAscending,
                WindowOrdering::DegreeDescending,
                WindowOrdering::Random(42),
            ] {
                let result = solver()
                    .windowed(WindowConfig {
                        size,
                        ordering,
                        enumerate_all: true,
                        ..WindowConfig::default()
                    })
                    .solve(&graph)
                    .unwrap();
                assert_eq!(
                    result.clique_number, omega,
                    "seed {seed} size {size} {ordering:?}"
                );
                assert_eq!(
                    result.cliques, cliques,
                    "seed {seed} size {size} {ordering:?}"
                );
            }
        }
    }
}

#[test]
fn windowed_find_one_returns_true_maximum() {
    for seed in 20..26 {
        let graph = generators::gnp(60, 0.2, seed);
        let (omega, cliques) = ReferenceEnumerator::enumerate(&graph);
        let result = solver()
            .windowed(WindowConfig::with_size(16))
            .solve(&graph)
            .unwrap();
        assert_eq!(result.clique_number, omega, "seed {seed}");
        assert_eq!(result.cliques.len(), 1);
        assert!(cliques.contains(&result.cliques[0]), "seed {seed}");
    }
}

#[test]
fn structured_families_solve_correctly() {
    // Families whose clique numbers are known analytically.
    let complete = generators::complete(9);
    let r = solver().solve(&complete).unwrap();
    assert_eq!(r.clique_number, 9);
    assert_eq!(r.multiplicity(), 1);

    // Complete bipartite K_{4,4}: ω = 2, every edge is a maximum clique.
    let mut edges = Vec::new();
    for u in 0..4u32 {
        for v in 4..8u32 {
            edges.push((u, v));
        }
    }
    let bipartite = Csr::from_edges(8, &edges);
    let r = solver().solve(&bipartite).unwrap();
    assert_eq!(r.clique_number, 2);
    assert_eq!(r.multiplicity(), 16);

    // A cycle C7: ω = 2, 7 maximum cliques.
    let cycle = Csr::from_edges(7, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 6), (6, 0)]);
    let r = solver().solve(&cycle).unwrap();
    assert_eq!(r.clique_number, 2);
    assert_eq!(r.multiplicity(), 7);

    // Two overlapping K5s sharing a triangle.
    let mut edges = Vec::new();
    for set in [[0u32, 1, 2, 3, 4], [2, 3, 4, 5, 6]] {
        for (i, &u) in set.iter().enumerate() {
            for &v in &set[i + 1..] {
                edges.push((u, v));
            }
        }
    }
    let overlapping = Csr::from_edges(7, &edges);
    let r = solver().solve(&overlapping).unwrap();
    assert_eq!(r.clique_number, 5);
    assert_eq!(r.cliques, vec![vec![0, 1, 2, 3, 4], vec![2, 3, 4, 5, 6]]);
}

#[test]
fn planted_cliques_are_recovered_exactly() {
    for seed in 0..5 {
        let base = generators::gnp(150, 0.04, seed);
        let (graph, members) = generators::plant_clique(&base, 10, seed + 50);
        let result = solver().solve(&graph).unwrap();
        assert_eq!(result.clique_number, 10, "seed {seed}");
        assert!(result.cliques.contains(&members), "seed {seed}");
    }
}

#[test]
fn multiplicity_counts_every_tie() {
    // d disjoint triangles → multiplicity d.
    let d = 12;
    let mut edges = Vec::new();
    for t in 0..d as u32 {
        let base = 3 * t;
        edges.extend([(base, base + 1), (base + 1, base + 2), (base, base + 2)]);
    }
    let graph = Csr::from_edges(3 * d, &edges);
    let result = solver().solve(&graph).unwrap();
    assert_eq!(result.clique_number, 3);
    assert_eq!(result.multiplicity(), d);
}

#[test]
fn moon_moser_graphs_have_closed_form_multiplicity() {
    // Complete multipartite K_{s,s,…,s}: ω = #parts, and the maximum
    // cliques are exactly the ways to pick one vertex per part — the
    // extremal instances behind the Moon–Moser bound the paper's related
    // work sizes subtrees with. The solver must enumerate every one.
    for (parts, expected_omega, expected_count) in [
        (vec![3usize, 3, 3], 3u32, 27usize), // the classic 3^(n/3) case
        (vec![3, 3, 3, 3], 4, 81),           // n = 12 → 3^4
        (vec![2, 3, 4], 3, 24),              // mixed part sizes
        (vec![5, 1, 2], 3, 10),
    ] {
        let graph = generators::complete_multipartite(&parts);
        let result = solver().solve(&graph).unwrap();
        assert_eq!(result.clique_number, expected_omega, "{parts:?}");
        assert_eq!(result.multiplicity(), expected_count, "{parts:?}");
        // Each clique takes exactly one vertex per part.
        let mut boundaries = vec![0usize];
        for &p in &parts {
            boundaries.push(boundaries.last().unwrap() + p);
        }
        for clique in &result.cliques {
            for window in boundaries.windows(2) {
                let in_part = clique
                    .iter()
                    .filter(|&&v| (v as usize) >= window[0] && (v as usize) < window[1])
                    .count();
                assert_eq!(in_part, 1, "{parts:?}: {clique:?}");
            }
        }
    }
}

#[test]
fn complement_of_sparse_graph_solves_via_independent_sets() {
    // ω(Ḡ) is the independence number of G: check on a known case. C5 is
    // self-complementary, so both have ω = 2 with 5 maximum cliques.
    let c5 = Csr::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)]);
    let direct = solver().solve(&c5).unwrap();
    let complement = solver().solve(&c5.complement()).unwrap();
    assert_eq!(direct.clique_number, 2);
    assert_eq!(complement.clique_number, 2);
    assert_eq!(direct.multiplicity(), 5);
    assert_eq!(complement.multiplicity(), 5);
}

#[test]
fn unpruned_level_one_equals_triangle_count() {
    // With no pruning, the second clique-list level holds exactly the
    // graph's triangles (each once, by orientation) — a cross-check between
    // the solver's expansion and an independent triangle counter.
    let exec = gpu_max_clique::prelude::Executor::new(2);
    for seed in 0..5 {
        let graph = generators::gnp(80, 0.15, seed);
        let result = solver()
            .heuristic(HeuristicKind::None)
            .early_exit(false)
            .solve(&graph)
            .unwrap();
        let triangles = gpu_max_clique::graph::algo::triangle_count(&exec, &graph);
        let level1 = result.stats.level_entries.get(1).copied().unwrap_or(0);
        assert_eq!(level1 as u64, triangles, "seed {seed}");
        // And level 0 is the full oriented edge set.
        assert_eq!(
            result.stats.level_entries[0],
            graph.num_edges(),
            "seed {seed}"
        );
    }
}

#[test]
fn heuristic_bound_is_always_sound() {
    for spec in corpus(Tier::Smoke).into_iter().step_by(4) {
        let graph = spec.load();
        let omega = ReferenceEnumerator::clique_number(&graph);
        let device = Device::unlimited();
        for kind in HeuristicKind::all() {
            let h = gpu_max_clique::heuristic::run_heuristic(&device, &graph, kind, None).unwrap();
            assert!(
                h.lower_bound() <= omega,
                "{}: {kind} overshot ω ({} > {omega})",
                spec.name,
                h.lower_bound()
            );
            assert!(graph.is_clique(&h.clique), "{}: {kind} witness", spec.name);
        }
    }
}
