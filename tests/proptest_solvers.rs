//! Property-based cross-checks of the full solver stack on arbitrary small
//! graphs.

use gpu_max_clique::graph::{kcore, Csr};
use gpu_max_clique::heuristic::HeuristicKind;
use gpu_max_clique::mce::{MaxCliqueSolver, WindowConfig, WindowOrdering};
use gpu_max_clique::pmc::{ParallelBranchBound, ReferenceEnumerator};
use gpu_max_clique::prelude::{Device, Executor};
use proptest::prelude::*;

/// An arbitrary graph on up to `max_n` vertices with the given edge
/// probability distribution.
fn arb_graph(max_n: usize) -> impl Strategy<Value = Csr> {
    (2..=max_n).prop_flat_map(|n| {
        let pairs = n * (n - 1) / 2;
        proptest::collection::vec(proptest::bool::weighted(0.25), pairs).prop_map(move |bits| {
            let mut edges = Vec::new();
            let mut idx = 0;
            for u in 0..n as u32 {
                for v in (u + 1)..n as u32 {
                    if bits[idx] {
                        edges.push((u, v));
                    }
                    idx += 1;
                }
            }
            Csr::from_edges(n, &edges)
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn bfs_enumeration_equals_oracle(graph in arb_graph(20)) {
        let (omega, cliques) = ReferenceEnumerator::enumerate(&graph);
        let result = MaxCliqueSolver::new(Device::unlimited()).solve(&graph).unwrap();
        prop_assert_eq!(result.clique_number, omega);
        prop_assert_eq!(result.cliques, cliques);
    }

    #[test]
    fn every_heuristic_is_a_sound_lower_bound(graph in arb_graph(18)) {
        let omega = ReferenceEnumerator::clique_number(&graph);
        let device = Device::unlimited();
        for kind in HeuristicKind::all() {
            let h = gpu_max_clique::heuristic::run_heuristic(&device, &graph, kind, None).unwrap();
            prop_assert!(h.lower_bound() <= omega);
            prop_assert!(graph.is_clique(&h.clique));
        }
    }

    #[test]
    fn windowed_enumeration_equals_oracle(
        graph in arb_graph(16),
        size in 1usize..32,
        ordering_pick in 0u8..4,
    ) {
        let ordering = match ordering_pick {
            0 => WindowOrdering::Index,
            1 => WindowOrdering::DegreeAscending,
            2 => WindowOrdering::DegreeDescending,
            _ => WindowOrdering::Random(9),
        };
        let (omega, cliques) = ReferenceEnumerator::enumerate(&graph);
        let result = MaxCliqueSolver::new(Device::unlimited())
            .windowed(WindowConfig { size, ordering, enumerate_all: true, ..WindowConfig::default() })
            .solve(&graph)
            .unwrap();
        prop_assert_eq!(result.clique_number, omega);
        prop_assert_eq!(result.cliques, cliques);
    }

    #[test]
    fn windowed_find_one_is_maximum(graph in arb_graph(16), size in 1usize..16) {
        let (omega, cliques) = ReferenceEnumerator::enumerate(&graph);
        let result = MaxCliqueSolver::new(Device::unlimited())
            .windowed(WindowConfig::with_size(size))
            .solve(&graph)
            .unwrap();
        prop_assert_eq!(result.clique_number, omega);
        if omega >= 2 {
            prop_assert_eq!(result.cliques.len(), 1);
            prop_assert!(cliques.contains(&result.cliques[0]));
        }
    }

    #[test]
    fn parallel_and_recursive_windows_equal_oracle(
        graph in arb_graph(14),
        size in 1usize..12,
        workers in 1usize..4,
        depth in 1usize..6,
    ) {
        let (omega, cliques) = ReferenceEnumerator::enumerate(&graph);
        let result = MaxCliqueSolver::new(Device::new(2, usize::MAX))
            .windowed(WindowConfig {
                size,
                enumerate_all: true,
                max_depth: depth,
                parallel_windows: workers,
                ..WindowConfig::default()
            })
            .solve(&graph)
            .unwrap();
        prop_assert_eq!(result.clique_number, omega);
        prop_assert_eq!(result.cliques, cliques);
    }

    #[test]
    fn pmc_finds_the_clique_number(graph in arb_graph(20)) {
        let omega = ReferenceEnumerator::clique_number(&graph);
        let result = ParallelBranchBound::new(2).solve(&graph);
        prop_assert_eq!(result.clique_number, omega);
        prop_assert!(graph.is_clique(&result.clique));
    }

    #[test]
    fn clique_number_bounded_by_degeneracy(graph in arb_graph(20)) {
        let omega = ReferenceEnumerator::clique_number(&graph);
        if graph.num_edges() > 0 {
            let degeneracy = kcore::degeneracy(&graph);
            prop_assert!(omega <= degeneracy + 1);
        }
    }

    #[test]
    fn parallel_kcore_equals_sequential(graph in arb_graph(24)) {
        let exec = Executor::new(3);
        prop_assert_eq!(
            kcore::core_numbers_parallel(&exec, &graph),
            kcore::core_numbers(&graph)
        );
    }

    #[test]
    fn enumerated_cliques_are_valid_distinct_and_maximal(graph in arb_graph(18)) {
        let result = MaxCliqueSolver::new(Device::unlimited()).solve(&graph).unwrap();
        let omega = result.clique_number as usize;
        for clique in &result.cliques {
            prop_assert_eq!(clique.len(), omega);
            prop_assert!(graph.is_clique(clique));
            // Sorted ascending within each clique.
            prop_assert!(clique.windows(2).all(|w| w[0] < w[1]));
        }
        // Pairwise distinct (the list is sorted, so adjacent equality
        // suffices).
        prop_assert!(result.cliques.windows(2).all(|w| w[0] != w[1]));
    }

    #[test]
    fn early_exit_never_changes_the_answer(graph in arb_graph(18)) {
        let with = MaxCliqueSolver::new(Device::unlimited()).early_exit(true).solve(&graph).unwrap();
        let without = MaxCliqueSolver::new(Device::unlimited()).early_exit(false).solve(&graph).unwrap();
        prop_assert_eq!(with.clique_number, without.clique_number);
        prop_assert_eq!(with.cliques, without.cliques);
    }

    #[test]
    fn oom_never_returns_a_wrong_answer(graph in arb_graph(16), budget in 64usize..4096) {
        let device = Device::with_memory_budget(budget);
        // OOM is acceptable; a wrong answer is not.
        if let Ok(result) = MaxCliqueSolver::new(device).solve(&graph) {
            let omega = ReferenceEnumerator::clique_number(&graph);
            prop_assert_eq!(result.clique_number, omega);
        }
    }
}
