//! Property-based cross-checks of the full solver stack on arbitrary small
//! graphs, on the in-tree seeded harness (`gmc_dpp::prop`). Failures
//! shrink the edge list and replay via `GMC_PROP_SEED`.

use gmc_dpp::prop::{self, gens, shrinks, Config};
use gmc_dpp::{prop_assert, prop_assert_eq, Rng};
use gpu_max_clique::graph::{kcore, Csr};
use gpu_max_clique::heuristic::HeuristicKind;
use gpu_max_clique::mce::{MaxCliqueSolver, WindowConfig, WindowOrdering};
use gpu_max_clique::pmc::{ParallelBranchBound, ReferenceEnumerator};
use gpu_max_clique::prelude::{Device, Executor};

/// An arbitrary graph case: vertex count plus G(n, 0.25) edge list. Kept
/// as raw parts so shrinking can drop edges while the vertex set stays
/// valid.
type GraphCase = (usize, Vec<(u32, u32)>);

fn arb_graph(rng: &mut Rng, max_n: usize) -> GraphCase {
    let n = rng.gen_range(2usize..=max_n);
    (n, gens::edges_gnp(rng, n, 0.25))
}

fn shrink_graph(case: &GraphCase) -> Vec<GraphCase> {
    shrinks::edges(&case.1)
        .into_iter()
        .map(|edges| (case.0, edges))
        .collect()
}

fn csr(case: &GraphCase) -> Csr {
    Csr::from_edges(case.0, &case.1)
}

/// The original proptest suite ran 48 cases per property; keep that scale
/// (still overridable through `GMC_PROP_CASES`).
fn config() -> Config {
    config_with(48)
}

/// Like [`config`], for properties whose cases are individually expensive
/// (e.g. near-complete spill-boundary graphs).
fn config_with(cases: u32) -> Config {
    let mut config = Config::default();
    if std::env::var("GMC_PROP_CASES").is_err() {
        config.cases = cases;
    }
    config
}

#[test]
fn bfs_enumeration_equals_oracle() {
    prop::check_with(
        config(),
        "bfs_enumeration_equals_oracle",
        |rng| arb_graph(rng, 20),
        shrink_graph,
        |case| {
            let graph = csr(case);
            let (omega, cliques) = ReferenceEnumerator::enumerate(&graph);
            let result = MaxCliqueSolver::new(Device::unlimited())
                .solve(&graph)
                .unwrap();
            prop_assert_eq!(result.clique_number, omega);
            prop_assert_eq!(result.cliques, cliques);
            Ok(())
        },
    );
}

#[test]
fn every_heuristic_is_a_sound_lower_bound() {
    prop::check_with(
        config(),
        "every_heuristic_is_a_sound_lower_bound",
        |rng| arb_graph(rng, 18),
        shrink_graph,
        |case| {
            let graph = csr(case);
            let omega = ReferenceEnumerator::clique_number(&graph);
            let device = Device::unlimited();
            for kind in HeuristicKind::all() {
                let h =
                    gpu_max_clique::heuristic::run_heuristic(&device, &graph, kind, None).unwrap();
                prop_assert!(h.lower_bound() <= omega);
                prop_assert!(graph.is_clique(&h.clique));
            }
            Ok(())
        },
    );
}

#[test]
fn windowed_enumeration_equals_oracle() {
    prop::check_with(
        config(),
        "windowed_enumeration_equals_oracle",
        |rng| {
            let ordering = gens::one_of(
                rng,
                &[
                    WindowOrdering::Index,
                    WindowOrdering::DegreeAscending,
                    WindowOrdering::DegreeDescending,
                    WindowOrdering::Random(9),
                ],
            );
            (arb_graph(rng, 16), rng.gen_range(1usize..32), ordering)
        },
        |(case, size, ordering)| {
            shrink_graph(case)
                .into_iter()
                .map(|c| (c, *size, *ordering))
                .collect()
        },
        |(case, size, ordering)| {
            let graph = csr(case);
            let (omega, cliques) = ReferenceEnumerator::enumerate(&graph);
            let result = MaxCliqueSolver::new(Device::unlimited())
                .windowed(WindowConfig {
                    size: *size,
                    ordering: *ordering,
                    enumerate_all: true,
                    ..WindowConfig::default()
                })
                .solve(&graph)
                .unwrap();
            prop_assert_eq!(result.clique_number, omega);
            prop_assert_eq!(result.cliques, cliques);
            Ok(())
        },
    );
}

#[test]
fn windowed_find_one_is_maximum() {
    prop::check_with(
        config(),
        "windowed_find_one_is_maximum",
        |rng| (arb_graph(rng, 16), rng.gen_range(1usize..16)),
        |(case, size)| shrink_graph(case).into_iter().map(|c| (c, *size)).collect(),
        |(case, size)| {
            let graph = csr(case);
            let (omega, cliques) = ReferenceEnumerator::enumerate(&graph);
            let result = MaxCliqueSolver::new(Device::unlimited())
                .windowed(WindowConfig::with_size(*size))
                .solve(&graph)
                .unwrap();
            prop_assert_eq!(result.clique_number, omega);
            if omega >= 2 {
                prop_assert_eq!(result.cliques.len(), 1);
                prop_assert!(cliques.contains(&result.cliques[0]));
            }
            Ok(())
        },
    );
}

#[test]
fn parallel_and_recursive_windows_equal_oracle() {
    prop::check_with(
        config(),
        "parallel_and_recursive_windows_equal_oracle",
        |rng| {
            (
                arb_graph(rng, 14),
                rng.gen_range(1usize..12),
                rng.gen_range(1usize..4),
                rng.gen_range(1usize..6),
            )
        },
        |(case, size, workers, depth)| {
            shrink_graph(case)
                .into_iter()
                .map(|c| (c, *size, *workers, *depth))
                .collect()
        },
        |(case, size, workers, depth)| {
            let graph = csr(case);
            let (omega, cliques) = ReferenceEnumerator::enumerate(&graph);
            let result = MaxCliqueSolver::new(Device::new(2, usize::MAX))
                .windowed(WindowConfig {
                    size: *size,
                    enumerate_all: true,
                    max_depth: *depth,
                    parallel_windows: *workers,
                    ..WindowConfig::default()
                })
                .solve(&graph)
                .unwrap();
            prop_assert_eq!(result.clique_number, omega);
            prop_assert_eq!(result.cliques, cliques);
            Ok(())
        },
    );
}

#[test]
fn pmc_finds_the_clique_number() {
    prop::check_with(
        config(),
        "pmc_finds_the_clique_number",
        |rng| arb_graph(rng, 20),
        shrink_graph,
        |case| {
            let graph = csr(case);
            let omega = ReferenceEnumerator::clique_number(&graph);
            let result = ParallelBranchBound::new(2).solve(&graph);
            prop_assert_eq!(result.clique_number, omega);
            prop_assert!(graph.is_clique(&result.clique));
            Ok(())
        },
    );
}

#[test]
fn clique_number_bounded_by_degeneracy() {
    prop::check_with(
        config(),
        "clique_number_bounded_by_degeneracy",
        |rng| arb_graph(rng, 20),
        shrink_graph,
        |case| {
            let graph = csr(case);
            let omega = ReferenceEnumerator::clique_number(&graph);
            if graph.num_edges() > 0 {
                let degeneracy = kcore::degeneracy(&graph);
                prop_assert!(omega <= degeneracy + 1);
            }
            Ok(())
        },
    );
}

#[test]
fn parallel_kcore_equals_sequential() {
    prop::check_with(
        config(),
        "parallel_kcore_equals_sequential",
        |rng| arb_graph(rng, 24),
        shrink_graph,
        |case| {
            let graph = csr(case);
            let exec = Executor::new(3);
            prop_assert_eq!(
                kcore::core_numbers_parallel(&exec, &graph),
                kcore::core_numbers(&graph)
            );
            Ok(())
        },
    );
}

#[test]
fn enumerated_cliques_are_valid_distinct_and_maximal() {
    prop::check_with(
        config(),
        "enumerated_cliques_are_valid_distinct_and_maximal",
        |rng| arb_graph(rng, 18),
        shrink_graph,
        |case| {
            let graph = csr(case);
            let result = MaxCliqueSolver::new(Device::unlimited())
                .solve(&graph)
                .unwrap();
            let omega = result.clique_number as usize;
            for clique in &result.cliques {
                prop_assert_eq!(clique.len(), omega);
                prop_assert!(graph.is_clique(clique));
                // Sorted ascending within each clique.
                prop_assert!(clique.windows(2).all(|w| w[0] < w[1]));
            }
            // Pairwise distinct (the list is sorted, so adjacent equality
            // suffices).
            prop_assert!(result.cliques.windows(2).all(|w| w[0] != w[1]));
            Ok(())
        },
    );
}

#[test]
fn early_exit_never_changes_the_answer() {
    prop::check_with(
        config(),
        "early_exit_never_changes_the_answer",
        |rng| arb_graph(rng, 18),
        shrink_graph,
        |case| {
            let graph = csr(case);
            let with = MaxCliqueSolver::new(Device::unlimited())
                .early_exit(true)
                .solve(&graph)
                .unwrap();
            let without = MaxCliqueSolver::new(Device::unlimited())
                .early_exit(false)
                .solve(&graph)
                .unwrap();
            prop_assert_eq!(with.clique_number, without.clique_number);
            prop_assert_eq!(with.cliques, without.cliques);
            Ok(())
        },
    );
}

#[test]
fn oom_never_returns_a_wrong_answer() {
    prop::check_with(
        config(),
        "oom_never_returns_a_wrong_answer",
        |rng| (arb_graph(rng, 16), rng.gen_range(64usize..4096)),
        |(case, budget)| {
            let mut out: Vec<(GraphCase, usize)> = shrink_graph(case)
                .into_iter()
                .map(|c| (c, *budget))
                .collect();
            out.extend(
                shrinks::usize_toward(64)(budget)
                    .into_iter()
                    .map(|b| (case.clone(), b)),
            );
            out
        },
        |(case, budget)| {
            let graph = csr(case);
            let device = Device::with_memory_budget(*budget);
            // OOM is acceptable; a wrong answer is not.
            if let Ok(result) = MaxCliqueSolver::new(device).solve(&graph) {
                let omega = ReferenceEnumerator::clique_number(&graph);
                prop_assert_eq!(result.clique_number, omega);
            }
            Ok(())
        },
    );
}

#[test]
fn fused_pipeline_is_indistinguishable_from_unfused() {
    // The fused record-and-replay expansion must reproduce the unfused
    // baseline bit for bit — same cliques, same level shapes, same early
    // exits — across random graphs, worker counts and edge oracles, while
    // never making more oracle queries.
    use gpu_max_clique::mce::EdgeIndexKind;
    prop::check_with(
        config(),
        "fused_pipeline_is_indistinguishable_from_unfused",
        |rng| arb_graph(rng, 20),
        shrink_graph,
        |case| {
            let graph = csr(case);
            for workers in [1usize, 2, 8] {
                for oracle in [EdgeIndexKind::BinarySearch, EdgeIndexKind::Bitset] {
                    let solve = |fused: bool| {
                        MaxCliqueSolver::new(Device::new(workers, usize::MAX))
                            .edge_index(oracle)
                            .fused(fused)
                            .solve(&graph)
                            .unwrap()
                    };
                    let (f, u) = (solve(true), solve(false));
                    prop_assert_eq!(f.clique_number, u.clique_number);
                    prop_assert_eq!(&f.cliques, &u.cliques);
                    prop_assert_eq!(&f.stats.level_entries, &u.stats.level_entries);
                    prop_assert_eq!(f.stats.early_exit, u.stats.early_exit);
                    prop_assert!(f.stats.oracle_queries <= u.stats.oracle_queries);
                }
            }
            Ok(())
        },
    );
}

#[test]
fn local_bitmap_path_is_indistinguishable_from_scalar() {
    // The sublist-local bitmap fast path must be a pure strength reduction:
    // same cliques, same level shapes, same early exits as the scalar fused
    // walk and the unfused baseline, for every edge oracle and worker count.
    // Its accounting must reconcile exactly — every scalar probe is either
    // performed or reported as covered by a bitmap row, never dropped.
    use gpu_max_clique::mce::{EdgeIndexKind, LocalBitsMode};
    prop::check_with(
        config(),
        "local_bitmap_path_is_indistinguishable_from_scalar",
        |rng| arb_graph(rng, 16),
        shrink_graph,
        |case| {
            let graph = csr(case);
            for workers in [1usize, 2, 8] {
                for kind in [
                    EdgeIndexKind::BinarySearch,
                    EdgeIndexKind::Bitset,
                    EdgeIndexKind::Hash,
                    EdgeIndexKind::Auto,
                ] {
                    let solve = |fused: bool, local: LocalBitsMode| {
                        MaxCliqueSolver::new(Device::new(workers, usize::MAX))
                            .edge_index(kind)
                            .fused(fused)
                            .local_bits(local)
                            .solve(&graph)
                            .unwrap()
                    };
                    let off = solve(true, LocalBitsMode::Off);
                    let unfused = solve(false, LocalBitsMode::Off);
                    prop_assert_eq!(&off.cliques, &unfused.cliques);
                    prop_assert_eq!(&off.stats.level_entries, &unfused.stats.level_entries);
                    prop_assert_eq!(off.stats.local_bits.rows_built, 0);
                    for local in [LocalBitsMode::On, LocalBitsMode::Auto] {
                        let on = solve(true, local);
                        prop_assert_eq!(on.clique_number, off.clique_number);
                        prop_assert_eq!(&on.cliques, &off.cliques);
                        prop_assert_eq!(&on.stats.level_entries, &off.stats.level_entries);
                        prop_assert_eq!(on.stats.early_exit, off.stats.early_exit);
                        prop_assert_eq!(
                            on.stats.oracle_queries + on.stats.local_bits.probes_avoided,
                            off.stats.oracle_queries
                        );
                    }
                }
            }
            Ok(())
        },
    );
}

#[test]
fn local_bitmaps_cross_the_inline_spill_boundary() {
    // Near-complete cores of 62–70 vertices produce sublists whose tails
    // straddle the 64-bit inline mask: below it the bitmap row feeds the
    // inline word only, above it the spill words too. Both sides must stay
    // bit-identical to the scalar walk, and the fringe vertices keep some
    // short scalar sublists in the same level so mixed dispatch is covered.
    use gpu_max_clique::mce::{EdgeIndexKind, LocalBitsMode};
    prop::check_with(
        config_with(8),
        "local_bitmaps_cross_the_inline_spill_boundary",
        |rng| {
            let core = rng.gen_range(62usize..=70);
            let fringe = rng.gen_range(0usize..=4);
            let mut edges = Vec::new();
            for a in 0..core as u32 {
                for b in (a + 1)..core as u32 {
                    edges.push((a, b));
                }
            }
            for f in 0..fringe {
                let v = (core + f) as u32;
                for u in 0..core as u32 {
                    if rng.gen_range(0usize..3) == 0 {
                        edges.push((u, v));
                    }
                }
            }
            (core + fringe, edges)
        },
        // A near-complete edge list has no useful smaller shape; replay the
        // failing seed via GMC_PROP_SEED instead of shrinking ~2400 edges.
        |_case| Vec::new(),
        |case| {
            let graph = csr(case);
            for workers in [1usize, 8] {
                for kind in [EdgeIndexKind::BinarySearch, EdgeIndexKind::Bitset] {
                    let solve = |local: LocalBitsMode| {
                        MaxCliqueSolver::new(Device::new(workers, usize::MAX))
                            .edge_index(kind)
                            .fused(true)
                            .local_bits(local)
                            .solve(&graph)
                            .unwrap()
                    };
                    let off = solve(LocalBitsMode::Off);
                    for local in [LocalBitsMode::On, LocalBitsMode::Auto] {
                        let on = solve(local);
                        prop_assert_eq!(on.clique_number, off.clique_number);
                        prop_assert_eq!(&on.cliques, &off.cliques);
                        prop_assert_eq!(&on.stats.level_entries, &off.stats.level_entries);
                        prop_assert_eq!(
                            on.stats.oracle_queries + on.stats.local_bits.probes_avoided,
                            off.stats.oracle_queries
                        );
                        // On forces a bitmap for every 62+-member core
                        // sublist; Auto correctly stays scalar here — the
                        // near-complete core makes the bound tight (need ≈ m
                        // at every level), so the provable walk savings never
                        // cover the build cost.
                        if local == LocalBitsMode::On {
                            prop_assert!(on.stats.local_bits.rows_built > 0);
                        } else {
                            prop_assert_eq!(on.stats.local_bits.rows_built, 0);
                        }
                    }
                }
            }
            Ok(())
        },
    );
}

#[test]
fn persistent_tier_is_indistinguishable_across_oracles_workers_and_windows() {
    // Three-way equivalence of the local-bits tiers: the persistent core
    // bitmap, the per-level sublist bitmaps and the scalar walk must be
    // bit-for-bit interchangeable — same cliques, same level shapes, same
    // early exits — across edge oracles, worker counts, and the windowed
    // and unwindowed drivers, with exact probe reconciliation throughout.
    // An armed fault plan rides along on one worker count: injected OOM or
    // launch faults during the one-time bitmap build must degrade to the
    // per-level tier (or recover by retry), never abort or change output.
    use gpu_max_clique::mce::{EdgeIndexKind, LocalBitsMode};
    use gpu_max_clique::prelude::FaultPlan;
    prop::check_with(
        config_with(12),
        "persistent_tier_is_indistinguishable_across_oracles_workers_and_windows",
        |rng| arb_graph(rng, 16),
        shrink_graph,
        |case| {
            let graph = csr(case);
            for workers in [1usize, 2, 8] {
                for kind in [
                    EdgeIndexKind::BinarySearch,
                    EdgeIndexKind::Bitset,
                    EdgeIndexKind::Hash,
                ] {
                    for windowed in [false, true] {
                        let solve = |local: LocalBitsMode, faults: Option<FaultPlan>| {
                            let mut solver = MaxCliqueSolver::new(Device::new(workers, usize::MAX))
                                .edge_index(kind)
                                .fused(true)
                                .local_bits(local)
                                .faults(faults);
                            if windowed {
                                solver = solver.windowed(WindowConfig {
                                    size: 8,
                                    enumerate_all: true,
                                    ..WindowConfig::default()
                                });
                            }
                            solver.solve(&graph).unwrap()
                        };
                        let off = solve(LocalBitsMode::Off, None);
                        let on = solve(LocalBitsMode::On, None);
                        let per = solve(LocalBitsMode::Persistent, None);
                        for run in [&on, &per] {
                            prop_assert_eq!(run.clique_number, off.clique_number);
                            prop_assert_eq!(&run.cliques, &off.cliques);
                            prop_assert_eq!(&run.stats.level_entries, &off.stats.level_entries);
                            prop_assert_eq!(run.stats.early_exit, off.stats.early_exit);
                            prop_assert_eq!(
                                run.stats.oracle_queries + run.stats.local_bits.probes_avoided,
                                off.stats.oracle_queries
                            );
                        }
                        // The persistent tier never plans or builds
                        // per-level rows, and every avoided probe came
                        // from the core bitmap.
                        prop_assert_eq!(per.stats.local_bits.rows_built, 0);
                        prop_assert_eq!(per.stats.local_bits.words_anded, 0);
                        prop_assert_eq!(
                            per.stats.local_bits.persistent_probes,
                            per.stats.local_bits.probes_avoided
                        );
                        // Tiny graphs can resolve before any window runs
                        // (no window stats block); when windows did run,
                        // the solve-level block must mirror theirs.
                        if let Some(w) = per.stats.window.as_ref() {
                            prop_assert_eq!(per.stats.local_bits, w.local_bits);
                        }
                        if workers == 2 {
                            let plan: FaultPlan = "seed=5,alloc=0.02,launch=0.02,retries=64"
                                .parse()
                                .expect("plan parses");
                            let faulted = solve(LocalBitsMode::Persistent, Some(plan));
                            prop_assert_eq!(&faulted.cliques, &off.cliques);
                            prop_assert_eq!(
                                faulted.stats.oracle_queries
                                    + faulted.stats.local_bits.probes_avoided,
                                off.stats.oracle_queries
                            );
                            let f = faulted.stats.faults;
                            prop_assert_eq!(f.recovered(), f.injected());
                        }
                    }
                }
            }
            Ok(())
        },
    );
}

#[test]
fn auto_threshold_edge_keeps_modes_equivalent() {
    // Wheels of 29–36 rim vertices under *index* orientation (so the hub at
    // vertex 0 sources one sublist of exactly m members) put the sublist
    // length right at the Auto heuristic's 32-member cutoff: below it Auto
    // must stay scalar (zero rows built), at or above it the degree-light,
    // loose-bound sublist passes the walk-vs-build test and the bitmap
    // fires — and in both regimes every mode returns identical results
    // with exact probe reconciliation. The rim cycle matters: it keeps the
    // whole wheel in its own 3-core, so setup's core-number pruning (the
    // wheel's triangles bound ω at 3) cannot strip any hub member — a bare
    // star's degree-1 leaves would all be pruned before the BFS begins.
    use gpu_max_clique::mce::{LocalBitsMode, OrientationRule};
    // Isolated padding vertices are pruned by setup, so they change nothing
    // about the search — but they inflate the persistent core bitmap's
    // renumber-table footprint (4 bytes per original vertex) past the
    // quarter-budget gate of a 64 KiB device, forcing Auto down to the
    // per-level planner there while a roomy device picks the persistent
    // tier for the very same graph.
    const PAD: usize = 5000;
    prop::check_with(
        config_with(16),
        "auto_threshold_edge_keeps_modes_equivalent",
        |rng| {
            let m = rng.gen_range(29usize..=36);
            let mut edges: Vec<(u32, u32)> = (1..=m as u32).map(|v| (0, v)).collect();
            for v in 1..m as u32 {
                edges.push((v, v + 1));
            }
            edges.push((1, m as u32));
            (m + 1 + PAD, edges)
        },
        |_case| Vec::new(),
        |case| {
            let graph = csr(case);
            let m = case.0 - 1 - PAD;
            let solve = |local: LocalBitsMode, capacity: usize| {
                MaxCliqueSolver::new(Device::new(2, capacity))
                    .orientation(OrientationRule::Index)
                    .fused(true)
                    .local_bits(local)
                    .solve(&graph)
                    .unwrap()
            };
            let off = solve(LocalBitsMode::Off, usize::MAX);
            let on = solve(LocalBitsMode::On, usize::MAX);
            let auto_persistent = solve(LocalBitsMode::Auto, usize::MAX);
            let auto_perlevel = solve(LocalBitsMode::Auto, 64 * 1024);
            for run in [&on, &auto_persistent, &auto_perlevel] {
                prop_assert_eq!(run.clique_number, off.clique_number);
                prop_assert_eq!(&run.cliques, &off.cliques);
                prop_assert_eq!(&run.stats.level_entries, &off.stats.level_entries);
                prop_assert_eq!(
                    run.stats.oracle_queries + run.stats.local_bits.probes_avoided,
                    off.stats.oracle_queries
                );
            }
            prop_assert!(on.stats.local_bits.rows_built > 0);
            // Roomy budget: the three-tier Auto prefers the persistent core
            // bitmap — zero per-level rows, every walk probe a word test.
            prop_assert_eq!(auto_persistent.stats.local_bits.rows_built, 0);
            prop_assert!(auto_persistent.stats.local_bits.persistent_probes > 0);
            prop_assert_eq!(
                auto_persistent.stats.local_bits.persistent_probes,
                auto_persistent.stats.local_bits.probes_avoided
            );
            // Gated budget: per-level Auto. The hub sublist has exactly m
            // members and deeper levels only shrink, so it fires iff m
            // reaches the 32-member cutoff (with ω = 3 the bound is loose,
            // so the triangular walk bound dwarfs the rim's m cycle edges +
            // m² build cost).
            prop_assert_eq!(auto_perlevel.stats.local_bits.persistent_probes, 0);
            if m >= 32 {
                prop_assert!(auto_perlevel.stats.local_bits.rows_built > 0, "m={m}");
            } else {
                prop_assert_eq!(auto_perlevel.stats.local_bits.rows_built, 0);
            }
            Ok(())
        },
    );
}
