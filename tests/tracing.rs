//! Tracing integration: a traced solve with parallel windows produces a
//! complete, well-nested timeline with events from every worker thread.

use gpu_max_clique::graph::generators;
use gpu_max_clique::prelude::*;
use std::collections::BTreeSet;

/// End of a span on its thread's clock.
fn end_ns(s: &gpu_max_clique::trace::Span) -> u64 {
    s.start_ns + s.dur_ns
}

#[test]
fn traced_parallel_windowed_solve_is_well_nested_per_worker() {
    let graph = generators::gnp(400, 0.05, 7);
    let session = TraceSession::new();

    let mut window = WindowConfig::with_size(32);
    window.parallel_windows = 4;
    let config = SolverConfig {
        window: Some(window),
        trace: session.tracer(),
        ..Default::default()
    };

    let result = MaxCliqueSolver::with_config(Device::unlimited(), config)
        .solve(&graph)
        .expect("solve fits in unlimited memory");
    assert!(result.clique_number >= 2);

    let timeline = session.finish();
    assert_eq!(timeline.dropped, 0, "no events lost to ring overflow");
    assert_eq!(timeline.unmatched, 0, "every begin paired with an end");
    assert!(!timeline.spans.is_empty());

    // The solver phases and the per-window spans are all present.
    let names: BTreeSet<&str> = timeline.spans.iter().map(|s| s.name).collect();
    for expected in ["solve", "setup", "windowed_search", "window"] {
        assert!(
            names.contains(expected),
            "missing span `{expected}`: {names:?}"
        );
    }

    // Parallel windows run on their own OS threads, each with its own ring.
    let tids: BTreeSet<u64> = timeline.spans.iter().map(|s| s.tid).collect();
    assert!(
        tids.len() > 1,
        "expected spans from more than one thread, got {tids:?}"
    );

    // Per thread, spans appear in start order (ring record order).
    for &tid in &tids {
        let mut last_start = 0u64;
        for s in timeline.spans.iter().filter(|s| s.tid == tid) {
            assert!(s.start_ns >= last_start, "per-thread starts are monotonic");
            last_start = s.start_ns;
        }
    }

    // Nesting: children lie inside their parent on the same thread, exactly
    // one level deeper; top-level spans have depth 0.
    for s in &timeline.spans {
        match s.parent {
            Some(p) => {
                let parent = &timeline.spans[p];
                assert_eq!(parent.tid, s.tid, "parent on the same thread");
                assert_eq!(s.depth, parent.depth + 1);
                assert!(parent.start_ns <= s.start_ns, "child starts inside parent");
                assert!(end_ns(s) <= end_ns(parent), "child ends inside parent");
            }
            None => assert_eq!(s.depth, 0, "parentless spans are top-level"),
        }
    }
}

#[test]
fn log_histogram_quantiles_are_ordered_and_bracketed() {
    // Property: across arbitrary seeded value streams, the histogram's
    // quantile estimates are ordered (p50 ≤ p99) and bracketed by the exact
    // extremes (min ≤ p50, p99 ≤ max), count/sum/min/max are exact, and
    // merging a split stream reproduces the whole-stream histogram.
    use gpu_max_clique::dpp::prop;
    use gpu_max_clique::trace::LogHistogram;

    prop::check(
        "log_histogram_quantile_order",
        |rng| {
            // Values across many octaves: shift a full-width draw so some
            // streams are tiny counters and some span nanosecond scales.
            let len = rng.gen_range(1..200usize);
            (0..len)
                .map(|_| rng.next_u64() >> rng.gen_range(0..64u32))
                .collect::<Vec<u64>>()
        },
        prop::shrinks::vec,
        |values: &Vec<u64>| {
            if values.is_empty() {
                return Ok(()); // shrinking may empty the stream
            }
            let mut h = LogHistogram::new();
            let mut left = LogHistogram::new();
            let mut right = LogHistogram::new();
            for (i, &v) in values.iter().enumerate() {
                h.record(v);
                if i % 2 == 0 {
                    left.record(v);
                } else {
                    right.record(v);
                }
            }

            let exact_min = *values.iter().min().unwrap();
            let exact_max = *values.iter().max().unwrap();
            if h.count() != values.len() as u64 {
                return Err(format!("count {} != {}", h.count(), values.len()));
            }
            let exact_sum = values.iter().fold(0u64, |a, &v| a.saturating_add(v));
            if h.sum() != exact_sum {
                return Err(format!("sum {} != {}", h.sum(), exact_sum));
            }
            if h.min() != exact_min || h.max() != exact_max {
                return Err(format!(
                    "extremes [{}, {}] != exact [{exact_min}, {exact_max}]",
                    h.min(),
                    h.max()
                ));
            }

            let p50 = h.quantile(0.5);
            let p99 = h.quantile(0.99);
            if p50 > p99 {
                return Err(format!("p50 {p50} > p99 {p99}"));
            }
            if p50 < exact_min || p99 > exact_max {
                return Err(format!(
                    "quantiles [{p50}, {p99}] escape [{exact_min}, {exact_max}]"
                ));
            }

            // Merging the even/odd split must reproduce the whole stream.
            let mut merged = LogHistogram::new();
            merged.merge(&left);
            merged.merge(&right);
            if merged.count() != h.count() || merged.sum() != h.sum() {
                return Err("merge loses samples".into());
            }
            for q in [0.0, 0.5, 0.99, 1.0] {
                if merged.quantile(q) != h.quantile(q) {
                    return Err(format!(
                        "merge changes q={q}: {} != {}",
                        merged.quantile(q),
                        h.quantile(q)
                    ));
                }
            }
            Ok(())
        },
    );
}

#[test]
fn untraced_solve_records_nothing_into_a_live_session() {
    // A solver whose config tracer is disabled must not touch a session
    // that exists in the same process.
    let session = TraceSession::new();
    let graph = generators::gnp(100, 0.05, 3);
    MaxCliqueSolver::new(Device::unlimited())
        .solve(&graph)
        .expect("solve fits");
    let timeline = session.finish();
    assert!(timeline.spans.is_empty());
    assert!(timeline.counters.is_empty());
    assert!(timeline.instants.is_empty());
}
