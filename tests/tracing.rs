//! Tracing integration: a traced solve with parallel windows produces a
//! complete, well-nested timeline with events from every worker thread.

use gpu_max_clique::graph::generators;
use gpu_max_clique::prelude::*;
use std::collections::BTreeSet;

/// End of a span on its thread's clock.
fn end_ns(s: &gpu_max_clique::trace::Span) -> u64 {
    s.start_ns + s.dur_ns
}

#[test]
fn traced_parallel_windowed_solve_is_well_nested_per_worker() {
    let graph = generators::gnp(400, 0.05, 7);
    let session = TraceSession::new();

    let mut window = WindowConfig::with_size(32);
    window.parallel_windows = 4;
    let config = SolverConfig {
        window: Some(window),
        trace: session.tracer(),
        ..Default::default()
    };

    let result = MaxCliqueSolver::with_config(Device::unlimited(), config)
        .solve(&graph)
        .expect("solve fits in unlimited memory");
    assert!(result.clique_number >= 2);

    let timeline = session.finish();
    assert_eq!(timeline.dropped, 0, "no events lost to ring overflow");
    assert_eq!(timeline.unmatched, 0, "every begin paired with an end");
    assert!(!timeline.spans.is_empty());

    // The solver phases and the per-window spans are all present.
    let names: BTreeSet<&str> = timeline.spans.iter().map(|s| s.name).collect();
    for expected in ["solve", "setup", "windowed_search", "window"] {
        assert!(
            names.contains(expected),
            "missing span `{expected}`: {names:?}"
        );
    }

    // Parallel windows run on their own OS threads, each with its own ring.
    let tids: BTreeSet<u64> = timeline.spans.iter().map(|s| s.tid).collect();
    assert!(
        tids.len() > 1,
        "expected spans from more than one thread, got {tids:?}"
    );

    // Per thread, spans appear in start order (ring record order).
    for &tid in &tids {
        let mut last_start = 0u64;
        for s in timeline.spans.iter().filter(|s| s.tid == tid) {
            assert!(s.start_ns >= last_start, "per-thread starts are monotonic");
            last_start = s.start_ns;
        }
    }

    // Nesting: children lie inside their parent on the same thread, exactly
    // one level deeper; top-level spans have depth 0.
    for s in &timeline.spans {
        match s.parent {
            Some(p) => {
                let parent = &timeline.spans[p];
                assert_eq!(parent.tid, s.tid, "parent on the same thread");
                assert_eq!(s.depth, parent.depth + 1);
                assert!(parent.start_ns <= s.start_ns, "child starts inside parent");
                assert!(end_ns(s) <= end_ns(parent), "child ends inside parent");
            }
            None => assert_eq!(s.depth, 0, "parentless spans are top-level"),
        }
    }
}

#[test]
fn untraced_solve_records_nothing_into_a_live_session() {
    // A solver whose config tracer is disabled must not touch a session
    // that exists in the same process.
    let session = TraceSession::new();
    let graph = generators::gnp(100, 0.05, 3);
    MaxCliqueSolver::new(Device::unlimited())
        .solve(&graph)
        .expect("solve fits");
    let timeline = session.finish();
    assert!(timeline.spans.is_empty());
    assert!(timeline.counters.is_empty());
    assert!(timeline.instants.is_empty());
}
