//! Chaos suite: solves under deterministic fault injection must produce
//! bit-identical clique output to fault-free runs, recover every injected
//! fault exactly once, and leave no live device memory behind.
//!
//! The CI `chaos-matrix` job runs this suite across a seed × fault-mix
//! matrix by exporting `GMC_FAULTS`; when the variable is unset (local
//! runs) a built-in trio of plans covering alloc-only, launch-only and
//! mixed faults is exercised instead. Either way the suite fails if no
//! fault was ever injected — a chaos run that injects nothing proves
//! nothing.

use gpu_max_clique::corpus::{corpus, Tier};
use gpu_max_clique::dpp::{CancelToken, DeviceError};
use gpu_max_clique::graph::{generators, CoreBitmap};
use gpu_max_clique::mce::{LocalBitsMode, MaxCliqueSolver, SolveError, SolverConfig, WindowConfig};
use gpu_max_clique::prelude::{Device, FaultPlan};

/// Plans used when `GMC_FAULTS` is unset. Rates are chosen so the smoke
/// datasets inject plenty of faults while staying far inside the retry
/// budget; the roll sequence is a pure function of (seed, step), so each
/// plan replays identically on every run and worker count.
const DEFAULT_PLANS: &[&str] = &[
    "seed=1,alloc=0.03,retries=64",
    "seed=2,launch=0.03,retries=64",
    "seed=3,alloc=0.02,launch=0.02,retries=64",
];

fn plans() -> Vec<FaultPlan> {
    match FaultPlan::from_env() {
        Some(plan) => vec![plan],
        None => DEFAULT_PLANS
            .iter()
            .map(|s| s.parse().expect("built-in plan parses"))
            .collect(),
    }
}

/// Every third smoke dataset: enough shape diversity to hit all three
/// recovery rungs while keeping the matrixed CI job fast.
fn chaos_datasets() -> impl Iterator<Item = gpu_max_clique::corpus::DatasetSpec> {
    corpus(Tier::Smoke).into_iter().step_by(3)
}

fn fault_free(mut config: SolverConfig) -> SolverConfig {
    config.faults = None; // never inherit GMC_FAULTS into the baseline
    config
}

#[test]
fn faulted_full_bfs_solves_are_bit_identical_to_fault_free() {
    let mut total_injected = 0u64;
    for plan in plans() {
        assert!(plan.is_active(), "chaos plan {plan} injects nothing");
        for spec in chaos_datasets() {
            let graph = spec.load();
            let baseline_config = fault_free(SolverConfig::default());
            let baseline =
                MaxCliqueSolver::with_config(Device::unlimited(), baseline_config.clone())
                    .solve(&graph)
                    .expect("fault-free solve succeeds");

            // Full BFS recovers a launch fault only by restarting the whole
            // expansion (rung 3), so the sustainable per-roll rate scales
            // inversely with the rolls per attempt — which spans orders of
            // magnitude across datasets. Probe with rates too small to ever
            // fire: `steps` then counts exactly the roll sites one clean
            // expansion passes, and capping the plan's rates at ~1.5
            // expected faults per attempt keeps retry convergence certain
            // while the seed and alloc/launch mix still vary per matrix
            // cell.
            let mut probe_config = baseline_config.clone();
            probe_config.faults = Some(FaultPlan {
                seed: plan.seed,
                alloc_rate: if plan.alloc_rate > 0.0 { 1e-12 } else { 0.0 },
                launch_rate: if plan.launch_rate > 0.0 { 1e-12 } else { 0.0 },
                max_retries: 8,
            });
            let probe = MaxCliqueSolver::with_config(Device::unlimited(), probe_config)
                .solve(&graph)
                .expect("probe solve succeeds");
            let rolls = probe.stats.faults.steps.max(1) as f64;
            let scaled = FaultPlan {
                seed: plan.seed,
                alloc_rate: plan.alloc_rate.min(1.5 / rolls),
                launch_rate: plan.launch_rate.min(1.5 / rolls),
                max_retries: plan.max_retries.max(64),
            };

            let mut config = baseline_config;
            config.faults = Some(scaled);
            let device = Device::unlimited();
            let faulted = MaxCliqueSolver::with_config(device.clone(), config)
                .solve(&graph)
                .unwrap_or_else(|e| {
                    panic!("{}: faulted solve failed under {plan}: {e}", spec.name)
                });

            assert_eq!(
                faulted.clique_number, baseline.clique_number,
                "{}: clique number diverged under {plan}",
                spec.name
            );
            assert_eq!(
                faulted.cliques, baseline.cliques,
                "{}: clique set diverged under {plan}",
                spec.name
            );
            assert_eq!(
                faulted.complete_enumeration, baseline.complete_enumeration,
                "{}",
                spec.name
            );

            let f = faulted.stats.faults;
            assert_eq!(
                f.recovered(),
                f.injected(),
                "{}: recovery count must match injected count exactly: {f:?}",
                spec.name
            );
            assert_eq!(device.memory().live(), 0, "{}: leaked memory", spec.name);
            total_injected += f.injected();
        }
    }
    assert!(
        total_injected > 0,
        "chaos suite injected zero faults — the matrix is not testing recovery"
    );
}

#[test]
fn faulted_windowed_solves_are_bit_identical_to_fault_free() {
    // The windowed path exercises rung 2 of the ladder: per-window retry
    // with arena release, then shrinking the window at a sublist boundary.
    let mut total_injected = 0u64;
    let mut total_window_recoveries = 0usize;
    for plan in plans() {
        for spec in chaos_datasets() {
            let graph = spec.load();
            let mut baseline_config = fault_free(SolverConfig::default());
            baseline_config.window = Some(WindowConfig {
                enumerate_all: true,
                ..WindowConfig::with_size(256)
            });
            let baseline =
                MaxCliqueSolver::with_config(Device::unlimited(), baseline_config.clone())
                    .solve(&graph)
                    .expect("fault-free windowed solve succeeds");

            let mut config = baseline_config;
            config.faults = Some(plan);
            let device = Device::unlimited();
            let faulted = MaxCliqueSolver::with_config(device.clone(), config)
                .solve(&graph)
                .unwrap_or_else(|e| {
                    panic!(
                        "{}: faulted windowed solve failed under {plan}: {e}",
                        spec.name
                    )
                });

            assert_eq!(
                faulted.clique_number, baseline.clique_number,
                "{}: windowed clique number diverged under {plan}",
                spec.name
            );
            assert_eq!(
                faulted.cliques, baseline.cliques,
                "{}: windowed clique set diverged under {plan}",
                spec.name
            );

            let f = faulted.stats.faults;
            assert_eq!(f.recovered(), f.injected(), "{}: {f:?}", spec.name);
            assert_eq!(device.memory().live(), 0, "{}: leaked memory", spec.name);
            total_injected += f.injected();
            if let Some(w) = &faulted.stats.window {
                total_window_recoveries += w.fault_retries + w.fault_shrinks;
            }
        }
    }
    assert!(
        total_injected > 0,
        "windowed chaos run injected zero faults"
    );
    // At least some faults must have been absorbed inside the window loop
    // (rung 2), not just by whole-expansion restarts (rung 3).
    assert!(
        total_window_recoveries > 0,
        "no fault was ever recovered at the window level"
    );
}

#[test]
fn fault_stats_are_reported_per_plan() {
    // A dense-ish plan on one dataset: the stats block must show nonzero
    // injection and exact recovery, proving the counters are plumbed
    // through `SolveStats` and not just internally consistent.
    let spec = chaos_datasets().next().expect("smoke corpus is non-empty");
    let graph = spec.load();
    let mut config = fault_free(SolverConfig::default());
    config.faults = Some(
        "seed=7,alloc=0.05,launch=0.05,retries=128"
            .parse()
            .expect("plan parses"),
    );
    let result = MaxCliqueSolver::with_config(Device::unlimited(), config)
        .solve(&graph)
        .expect("faulted solve succeeds");
    let f = result.stats.faults;
    assert!(f.injected() > 0, "no faults injected at 5% rates: {f:?}");
    assert_eq!(f.recovered(), f.injected(), "{f:?}");
}

#[test]
fn injected_oom_during_persistent_bitmap_build_degrades_to_per_level() {
    // Rung zero of the ladder: an injected alloc fault while charging or
    // building the solve-lifetime core bitmap must drop that solve to the
    // per-level tier — same cliques, no abort, no retry storm — and the
    // fallback must be book-kept as a recovery so the exact-recovery
    // invariant still holds. The roll sequence is a pure function of
    // (seed, step), so sweeping seeds deterministically lands some runs
    // on the bitmap charge roll and leaves others clean.
    let base = generators::gnp(150, 0.2, 11);
    let mut config = fault_free(SolverConfig::default());
    config.local_bits = LocalBitsMode::Persistent;
    let baseline = MaxCliqueSolver::with_config(Device::unlimited(), config.clone())
        .solve(&base)
        .expect("fault-free persistent solve succeeds");
    assert!(
        baseline.stats.local_bits.persistent_bytes > 0,
        "baseline must actually hold a persistent bitmap"
    );

    let mut bitmap_faults = 0u64;
    let mut finished_per_level = 0u32;
    for seed in 1..=20 {
        let mut faulted_config = config.clone();
        faulted_config.faults = Some(FaultPlan {
            seed,
            alloc_rate: 0.15,
            launch_rate: 0.0,
            max_retries: 512,
        });
        let device = Device::unlimited();
        let faulted = MaxCliqueSolver::with_config(device.clone(), faulted_config)
            .solve(&base)
            .unwrap_or_else(|e| panic!("seed {seed}: bitmap fault must degrade, not abort: {e}"));
        assert_eq!(faulted.cliques, baseline.cliques, "seed {seed}");
        assert_eq!(faulted.clique_number, baseline.clique_number, "seed {seed}");
        let f = faulted.stats.faults;
        assert_eq!(f.recovered(), f.injected(), "seed {seed}: {f:?}");
        assert_eq!(device.memory().live(), 0, "seed {seed}: leaked memory");
        bitmap_faults += f.bitmap_fallbacks;
        // A run whose *final* attempt degraded finishes the whole solve on
        // the per-level tier: the stats show no resident bitmap bytes.
        if f.bitmap_fallbacks > 0 && faulted.stats.local_bits.persistent_bytes == 0 {
            finished_per_level += 1;
        }
    }
    assert!(
        bitmap_faults > 0,
        "no seed ever faulted the persistent bitmap build — rates too low to test rung zero"
    );
    assert!(
        finished_per_level > 0,
        "no solve ever finished on the per-level tier after a bitmap fault"
    );
}

#[test]
fn cancellation_mid_bitmap_build_releases_every_charge() {
    // Device level, mirroring the solver's charge-then-build flow: the
    // footprint is charged first, then the build launches observe the
    // token. Cancellation mid-build must surface `Cancelled` (never the
    // degrade path) and dropping the guard must return memory to zero.
    let graph = generators::gnp(80, 0.2, 21);
    let device = Device::new(2, 64 << 20);
    let keep = vec![true; graph.num_vertices()];
    let footprint = CoreBitmap::footprint_for(graph.num_vertices(), graph.num_vertices());
    let guard = device
        .memory()
        .try_charge(footprint)
        .expect("bitmap footprint fits the partition");
    let token = CancelToken::new();
    device.set_cancel_token(Some(token.clone()));
    token.cancel();
    match CoreBitmap::try_build(device.exec(), &graph, &keep) {
        Err(DeviceError::Cancelled(_)) => {}
        Err(other) => panic!("cancelled build must surface Cancelled, got: {other}"),
        Ok(_) => panic!("cancelled build must not succeed"),
    }
    drop(guard);
    assert_eq!(
        device.memory().live(),
        0,
        "cancelled bitmap build left device memory charged"
    );

    // Solver level: a deadline that has already passed cancels the solve
    // wherever the next check lands — before, during, or after the bitmap
    // build — and every byte (bitmap included) must be released.
    device.set_cancel_token(Some(CancelToken::with_deadline(std::time::Instant::now())));
    let mut config = fault_free(SolverConfig::default());
    config.local_bits = LocalBitsMode::Persistent;
    match MaxCliqueSolver::with_config(device.clone(), config.clone()).solve(&graph) {
        Err(SolveError::Cancelled(_)) => {}
        Err(other) => panic!("expired deadline must surface Cancelled, got: {other}"),
        Ok(_) => panic!("a deadline in the past must cancel the solve"),
    }
    assert_eq!(
        device.memory().live(),
        0,
        "cancelled persistent solve left device memory charged"
    );

    // And with the token cleared the same device solves normally, holding
    // (then releasing) a real persistent bitmap.
    device.set_cancel_token(None);
    let done = MaxCliqueSolver::with_config(device.clone(), config)
        .solve(&graph)
        .expect("solve succeeds once the token is cleared");
    assert!(done.stats.local_bits.persistent_bytes > 0);
    assert_eq!(device.memory().live(), 0);
}
