//! Determinism guarantees: identical results run-to-run, across worker
//! counts, and label-invariance under vertex permutation.

use gpu_max_clique::corpus::{corpus, Tier};
use gpu_max_clique::graph::generators;
use gpu_max_clique::heuristic::HeuristicKind;
use gpu_max_clique::mce::{MaxCliqueSolver, WindowConfig};
use gpu_max_clique::prelude::{Device, FaultPlan, Schedule};

/// Every launch schedule, including a deliberately tiny morsel grain that
/// forces many claims per launch even on the smoke-sized grids.
fn all_schedules() -> [Schedule; 5] {
    [
        Schedule::Static,
        Schedule::Morsel { grain: 64 },
        Schedule::Morsel {
            grain: gpu_max_clique::dpp::DEFAULT_MORSEL_GRAIN,
        },
        Schedule::Guided,
        Schedule::Auto,
    ]
}

#[test]
fn repeated_solves_are_identical() {
    let graph = generators::gnp(120, 0.12, 1);
    let solver = MaxCliqueSolver::new(Device::unlimited());
    let first = solver.solve(&graph).unwrap();
    for _ in 0..3 {
        let again = solver.solve(&graph).unwrap();
        assert_eq!(again.clique_number, first.clique_number);
        assert_eq!(again.cliques, first.cliques);
        assert_eq!(again.stats.lower_bound, first.stats.lower_bound);
        assert_eq!(again.stats.level_entries, first.stats.level_entries);
    }
}

#[test]
fn worker_count_does_not_change_results() {
    let graph = generators::barabasi_albert(400, 5, 2);
    let reference = MaxCliqueSolver::new(Device::new(1, usize::MAX))
        .solve(&graph)
        .unwrap();
    for workers in [2, 3, 8] {
        let result = MaxCliqueSolver::new(Device::new(workers, usize::MAX))
            .solve(&graph)
            .unwrap();
        assert_eq!(result.cliques, reference.cliques, "workers {workers}");
        assert_eq!(
            result.stats.level_entries, reference.stats.level_entries,
            "workers {workers}: level shape changed"
        );
        assert_eq!(
            result.stats.peak_device_bytes, reference.stats.peak_device_bytes,
            "workers {workers}: memory accounting changed"
        );
    }
}

#[test]
fn windowed_solves_are_deterministic() {
    let graph = generators::gnp(100, 0.18, 3);
    let solve = |workers: usize| {
        MaxCliqueSolver::new(Device::new(workers, usize::MAX))
            .windowed(WindowConfig::with_size(16))
            .solve(&graph)
            .unwrap()
    };
    let a = solve(1);
    let b = solve(4);
    assert_eq!(a.cliques, b.cliques);
    assert_eq!(
        a.stats.window.unwrap().peak_window_bytes,
        b.stats.window.unwrap().peak_window_bytes
    );
}

#[test]
fn corpus_datasets_are_reproducible() {
    // Same spec → byte-identical graph → identical solve, across processes
    // and runs (the corpus is the experiment harness's ground truth).
    for spec in corpus(Tier::Smoke).into_iter().step_by(7) {
        let a = spec.load();
        let b = spec.load();
        assert_eq!(a, b, "{}", spec.name);
        let ra = MaxCliqueSolver::new(Device::unlimited()).solve(&a).unwrap();
        let rb = MaxCliqueSolver::new(Device::unlimited()).solve(&b).unwrap();
        assert_eq!(ra.cliques, rb.cliques, "{}", spec.name);
    }
}

#[test]
fn permutation_invariance_of_clique_number() {
    for spec in corpus(Tier::Smoke).into_iter().step_by(9) {
        let graph = spec.load();
        let base = MaxCliqueSolver::new(Device::unlimited())
            .solve(&graph)
            .unwrap();
        for seed in [11, 22] {
            let (shuffled, _) = graph.randomize_vertex_ids(seed);
            let result = MaxCliqueSolver::new(Device::unlimited())
                .solve(&shuffled)
                .unwrap();
            assert_eq!(
                result.clique_number, base.clique_number,
                "{} seed {seed}",
                spec.name
            );
            assert_eq!(
                result.multiplicity(),
                base.multiplicity(),
                "{} seed {seed}",
                spec.name
            );
        }
    }
}

#[test]
fn heuristics_are_deterministic_across_workers() {
    let graph = generators::holme_kim(500, 5, 0.6, 4);
    for kind in HeuristicKind::all() {
        let a = gpu_max_clique::heuristic::run_heuristic(
            &Device::new(1, usize::MAX),
            &graph,
            kind,
            None,
        )
        .unwrap();
        let b = gpu_max_clique::heuristic::run_heuristic(
            &Device::new(6, usize::MAX),
            &graph,
            kind,
            None,
        )
        .unwrap();
        assert_eq!(a.clique, b.clique, "{kind}");
    }
}

#[test]
fn schedules_do_not_change_results_across_worker_counts() {
    // The dynamic schedules reassign morsels to workers at runtime, but the
    // decomposition itself is worker-count independent, so every schedule ×
    // worker-count × pipeline combination must produce bit-identical cliques
    // and identical deterministic counters.
    let graph = generators::barabasi_albert(350, 6, 7);
    for fused in [false, true] {
        let reference = MaxCliqueSolver::new(Device::new(1, usize::MAX))
            .fused(fused)
            .schedule(Schedule::Static)
            .solve(&graph)
            .unwrap();
        for schedule in all_schedules() {
            for workers in [1, 2, 8] {
                let result = MaxCliqueSolver::new(Device::new(workers, usize::MAX))
                    .fused(fused)
                    .schedule(schedule)
                    .solve(&graph)
                    .unwrap();
                let ctx = format!("schedule {schedule} workers {workers} fused {fused}");
                assert_eq!(result.cliques, reference.cliques, "{ctx}");
                assert_eq!(
                    result.stats.oracle_queries, reference.stats.oracle_queries,
                    "{ctx}: oracle query count changed"
                );
                assert_eq!(
                    result.stats.local_bits, reference.stats.local_bits,
                    "{ctx}: sublist-bitmap counters changed"
                );
                assert_eq!(
                    result.stats.launches, reference.stats.launches,
                    "{ctx}: launch counters changed"
                );
            }
        }
    }
}

#[test]
fn schedules_preserve_fault_step_semantics() {
    // Fault rolls are keyed by a per-launch step counter; a schedule must
    // neither add nor remove launches, so an armed plan injects the *exact*
    // same fault sequence under every schedule and worker count — and the
    // recovered output stays bit-identical to the fault-free reference.
    let graph = generators::gnp(250, 0.25, 11);
    let plan: FaultPlan = "seed=7,alloc=0.05,launch=0.02,retries=256"
        .parse()
        .expect("plan parses");
    let clean = MaxCliqueSolver::new(Device::unlimited())
        .solve(&graph)
        .unwrap();
    let reference = MaxCliqueSolver::new(Device::new(1, usize::MAX))
        .schedule(Schedule::Static)
        .faults(Some(plan))
        .solve(&graph)
        .unwrap();
    assert_eq!(reference.cliques, clean.cliques);
    assert!(
        reference.stats.faults.injected() > 0,
        "plan injected nothing — the test proves nothing"
    );
    for schedule in all_schedules() {
        for workers in [1, 2, 8] {
            let result = MaxCliqueSolver::new(Device::new(workers, usize::MAX))
                .schedule(schedule)
                .faults(Some(plan))
                .solve(&graph)
                .unwrap();
            let ctx = format!("schedule {schedule} workers {workers}");
            assert_eq!(result.cliques, clean.cliques, "{ctx}");
            let f = result.stats.faults;
            assert_eq!(f, reference.stats.faults, "{ctx}: fault counters changed");
            assert_eq!(f.recovered(), f.injected(), "{ctx}: {f:?}");
        }
    }
}

#[test]
fn launch_stats_are_deterministic() {
    // The number of virtual-GPU launches is a structural property of the
    // algorithm, not of the machine.
    let graph = generators::gnp(150, 0.1, 5);
    let run = |workers: usize| {
        MaxCliqueSolver::new(Device::new(workers, usize::MAX))
            .solve(&graph)
            .unwrap()
            .stats
            .launches
    };
    assert_eq!(run(1), run(5));
}
