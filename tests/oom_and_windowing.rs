//! Device-memory behaviour: OOM surfaces as an error (never a wrong
//! answer), windowing reduces peak memory and rescues OOM instances, and
//! accounting never leaks.

use gpu_max_clique::graph::generators;
use gpu_max_clique::heuristic::HeuristicKind;
use gpu_max_clique::mce::{MaxCliqueSolver, SolveError, WindowConfig};
use gpu_max_clique::pmc::ReferenceEnumerator;
use gpu_max_clique::prelude::Device;

#[test]
fn oom_error_carries_accounting_details() {
    let graph = generators::gnp(150, 0.3, 1);
    let device = Device::with_memory_budget(4096);
    let err = MaxCliqueSolver::new(device.clone())
        .heuristic(HeuristicKind::None)
        .solve(&graph)
        .unwrap_err();
    let SolveError::DeviceOom(oom) = err else {
        panic!("expected DeviceOom, got {err:?}");
    };
    assert_eq!(oom.capacity, 4096);
    assert!(oom.requested > 0);
    // Nothing leaks after the failed run.
    assert_eq!(device.memory().live(), 0);
}

#[test]
fn failed_runs_leave_no_live_memory_at_any_budget() {
    let graph = generators::gnp(120, 0.25, 2);
    for budget in [64, 1024, 16 * 1024, 256 * 1024] {
        let device = Device::with_memory_budget(budget);
        let _ = MaxCliqueSolver::new(device.clone())
            .heuristic(HeuristicKind::None)
            .solve(&graph);
        assert_eq!(device.memory().live(), 0, "budget {budget} leaked");
    }
}

#[test]
fn better_heuristics_rescue_oom_instances() {
    // Find a budget where the unpruned search OOMs but the multi-run
    // degree-pruned search fits — the paper's Table I mechanism. A union of
    // many mid-size cliques with one larger planted clique is the shape
    // where an accurate bound prunes away almost the entire search: every
    // mid-size clique's subtree dies at the sublist-length cut.
    let base = generators::collaboration(300, 120, 8, 12, 1.5, 3);
    let (graph, _) = generators::plant_clique(&base, 18, 33);
    let reference = MaxCliqueSolver::new(Device::unlimited())
        .solve(&graph)
        .unwrap();

    let mut demonstrated = false;
    for budget_kb in [16, 32, 64, 128, 256, 512, 1024] {
        let device = Device::with_memory_budget(budget_kb * 1024);
        let none = MaxCliqueSolver::new(device.clone())
            .heuristic(HeuristicKind::None)
            .solve(&graph);
        let multi = MaxCliqueSolver::new(device)
            .heuristic(HeuristicKind::MultiDegree)
            .solve(&graph);
        if none.is_err() {
            if let Ok(result) = multi {
                assert_eq!(result.clique_number, reference.clique_number);
                assert_eq!(result.cliques, reference.cliques);
                demonstrated = true;
                break;
            }
        }
    }
    assert!(demonstrated, "no budget separated the heuristics");
}

#[test]
fn windowing_rescues_oom_and_stays_correct() {
    let graph = generators::gnp(200, 0.15, 4);
    let (omega, cliques) = ReferenceEnumerator::enumerate(&graph);

    let mut demonstrated = false;
    for budget_kb in [1, 2, 4, 8, 16, 32, 64] {
        let device = Device::with_memory_budget(budget_kb * 1024);
        let full = MaxCliqueSolver::new(device.clone())
            .heuristic(HeuristicKind::None)
            .solve(&graph);
        if full.is_ok() {
            continue;
        }
        // Full BFS is OOM at this budget; a small-window find-one run must
        // fit and agree.
        let windowed = MaxCliqueSolver::new(device)
            .heuristic(HeuristicKind::None)
            .windowed(WindowConfig::with_size(32))
            .solve(&graph);
        if let Ok(result) = windowed {
            assert_eq!(result.clique_number, omega);
            assert!(cliques.contains(&result.cliques[0]));
            demonstrated = true;
            break;
        }
    }
    assert!(demonstrated, "windowing never rescued an OOM budget");
}

#[test]
fn smaller_windows_use_less_peak_memory() {
    let graph = generators::gnp(200, 0.2, 5);
    let mut previous_peak = usize::MAX;
    for size in [usize::MAX / 2, 4096, 256, 16] {
        let device = Device::unlimited();
        let result = MaxCliqueSolver::new(device)
            .heuristic(HeuristicKind::MultiDegree)
            .windowed(WindowConfig::with_size(size))
            .solve(&graph)
            .unwrap();
        let peak = result.stats.window.unwrap().peak_window_bytes;
        assert!(
            peak <= previous_peak,
            "window {size}: peak {peak} exceeds larger window's {previous_peak}"
        );
        previous_peak = peak;
    }
}

#[test]
fn windowed_peak_is_below_full_bfs_peak() {
    let graph = generators::gnp(250, 0.15, 6);
    let full = MaxCliqueSolver::new(Device::unlimited())
        .solve(&graph)
        .unwrap();
    let windowed = MaxCliqueSolver::new(Device::unlimited())
        .windowed(WindowConfig::with_size(64))
        .solve(&graph)
        .unwrap();
    let windowed_peak = windowed.stats.window.unwrap().peak_window_bytes;
    assert!(
        windowed_peak < full.stats.peak_device_bytes,
        "windowed {windowed_peak} vs full {}",
        full.stats.peak_device_bytes
    );
    assert_eq!(windowed.clique_number, full.clique_number);
}

#[test]
fn bound_improvements_happen_across_windows() {
    // With no heuristic, the incumbent starts empty and must improve at
    // least once while windows are processed.
    let graph = generators::gnp(120, 0.15, 7);
    let result = MaxCliqueSolver::new(Device::unlimited())
        .heuristic(HeuristicKind::None)
        .windowed(WindowConfig::with_size(16))
        .solve(&graph)
        .unwrap();
    let stats = result.stats.window.unwrap();
    assert!(stats.bound_improvements >= 1);
    assert!(stats.num_windows > 1);
}

#[test]
fn peak_memory_statistic_reflects_level_growth() {
    // On a complete graph the clique list peaks at the widest binomial
    // level; the recorded peak must be at least that volume.
    let graph = generators::complete(16);
    let result = MaxCliqueSolver::new(Device::unlimited())
        .heuristic(HeuristicKind::None)
        .early_exit(false)
        .solve(&graph)
        .unwrap();
    let widest = result.stats.level_entries.iter().max().copied().unwrap();
    assert!(result.stats.peak_device_bytes >= widest * 8);
}

#[test]
fn heuristic_phase_oom_is_reported() {
    // A budget so small even the heuristic's neighbor arrays fail.
    let graph = generators::gnp(200, 0.2, 8);
    let device = Device::with_memory_budget(128);
    let result = MaxCliqueSolver::new(device)
        .heuristic(HeuristicKind::MultiDegree)
        .solve(&graph);
    assert!(matches!(result, Err(SolveError::DeviceOom(_))));
}

// ---------------------------------------------------------------------------
// Fault injection: the recovery ladder must never change answers.
// ---------------------------------------------------------------------------

use gmc_dpp::prop::{self, gens, shrinks, Config};
use gmc_dpp::{prop_assert_eq, Rng};
use gpu_max_clique::graph::Csr;
use gpu_max_clique::mce::{EdgeIndexKind, SolverConfig};
use gpu_max_clique::prelude::FaultPlan;

/// A fault-injection case: a G(28, 0.25) edge list plus the fault-plan
/// seed. Shrinking drops edges; the fault seed is replayed unchanged so the
/// injected fault sequence stays the one that failed.
type FaultCase = (Vec<(u32, u32)>, u64);

fn arb_fault_case(rng: &mut Rng) -> FaultCase {
    (gens::edges_gnp(rng, 28, 0.25), rng.next_u64())
}

fn fault_prop_config(cases: u32) -> Config {
    let mut config = Config {
        cases,
        seed: 0xFA17_CA5E,
        max_shrink_steps: 64,
    };
    if let Ok(v) = std::env::var("GMC_PROP_CASES") {
        if let Ok(n) = v.parse() {
            config.cases = n;
        }
    }
    config
}

/// Gentle rates with a deep retry cap: faults fire on most cases, yet the
/// chance of blowing through 32 whole-expansion retries is negligible. The
/// roll sequence depends only on the plan seed and launch order — launches
/// are bulk-synchronous and sequential — so outcomes are worker-count
/// independent and every failure replays exactly.
fn gentle_plan(seed: u64) -> FaultPlan {
    FaultPlan {
        seed,
        alloc_rate: 0.02,
        launch_rate: 0.02,
        max_retries: 32,
    }
}

#[test]
fn prop_faulted_solves_match_fault_free_across_workers_and_oracles() {
    prop::check_with(
        fault_prop_config(10),
        "faulted_solves_match_fault_free",
        arb_fault_case,
        shrinks::pair(shrinks::edges, shrinks::none),
        |case| {
            let (edges, fault_seed) = case;
            let graph = Csr::from_edges(28, edges);
            for kind in [EdgeIndexKind::BinarySearch, EdgeIndexKind::Hash] {
                for workers in [1usize, 2, 8] {
                    let baseline_config = SolverConfig {
                        faults: None, // never inherit GMC_FAULTS
                        edge_index: kind,
                        ..SolverConfig::default()
                    };
                    let baseline = MaxCliqueSolver::with_config(
                        Device::new(workers, usize::MAX),
                        baseline_config.clone(),
                    )
                    .solve(&graph)
                    .map_err(|e| format!("fault-free solve failed: {e}"))?;

                    let mut faulted_config = baseline_config;
                    faulted_config.faults = Some(gentle_plan(*fault_seed));
                    let device = Device::new(workers, usize::MAX);
                    let faulted = MaxCliqueSolver::with_config(device.clone(), faulted_config)
                        .solve(&graph)
                        .map_err(|e| {
                            format!("faulted solve failed ({kind:?}, workers {workers}): {e}")
                        })?;

                    prop_assert_eq!(faulted.clique_number, baseline.clique_number);
                    prop_assert_eq!(&faulted.cliques, &baseline.cliques);
                    prop_assert_eq!(faulted.complete_enumeration, baseline.complete_enumeration);
                    let f = faulted.stats.faults;
                    prop_assert_eq!(f.recovered(), f.injected());
                    prop_assert_eq!(device.memory().live(), 0);
                }
            }
            Ok(())
        },
    );
}

#[test]
fn prop_faulted_windowed_solves_match_fault_free() {
    // Same property through the windowed path: rung 2 of the recovery
    // ladder (per-window retry, then shrink at a sublist boundary) must
    // also be answer-preserving. Tiny windows force many of them.
    prop::check_with(
        fault_prop_config(8),
        "faulted_windowed_solves_match_fault_free",
        arb_fault_case,
        shrinks::pair(shrinks::edges, shrinks::none),
        |case| {
            let (edges, fault_seed) = case;
            let graph = Csr::from_edges(28, edges);
            let baseline_config = SolverConfig {
                faults: None, // never inherit GMC_FAULTS
                window: Some(WindowConfig {
                    enumerate_all: true,
                    ..WindowConfig::with_size(8)
                }),
                ..SolverConfig::default()
            };
            let baseline =
                MaxCliqueSolver::with_config(Device::new(2, usize::MAX), baseline_config.clone())
                    .solve(&graph)
                    .map_err(|e| format!("fault-free windowed solve failed: {e}"))?;

            let mut faulted_config = baseline_config;
            faulted_config.faults = Some(gentle_plan(*fault_seed));
            let device = Device::new(2, usize::MAX);
            let faulted = MaxCliqueSolver::with_config(device.clone(), faulted_config)
                .solve(&graph)
                .map_err(|e| format!("faulted windowed solve failed: {e}"))?;

            prop_assert_eq!(faulted.clique_number, baseline.clique_number);
            prop_assert_eq!(&faulted.cliques, &baseline.cliques);
            let f = faulted.stats.faults;
            prop_assert_eq!(f.recovered(), f.injected());
            prop_assert_eq!(device.memory().live(), 0);
            Ok(())
        },
    );
}

#[test]
fn exhausting_the_fault_retry_cap_is_a_typed_error_not_a_panic() {
    // With alloc_rate = 1.0 every expansion attempt faults on its first
    // charge, so the solver burns max_retries + 1 attempts and must
    // surface the typed error — leaving no live memory behind.
    let graph = generators::gnp(60, 0.3, 9);
    let device = Device::unlimited();
    let config = SolverConfig {
        faults: Some(FaultPlan {
            seed: 1,
            alloc_rate: 1.0,
            launch_rate: 0.0,
            max_retries: 2,
        }),
        ..SolverConfig::default()
    };
    let err = MaxCliqueSolver::with_config(device.clone(), config)
        .solve(&graph)
        .unwrap_err();
    let SolveError::FaultRetriesExhausted { attempts } = err else {
        panic!("expected FaultRetriesExhausted, got {err:?}");
    };
    assert_eq!(attempts, 3);
    assert_eq!(device.memory().live(), 0);
}

#[test]
fn exhausting_launch_fault_retries_is_also_typed() {
    let graph = generators::gnp(60, 0.3, 10);
    let device = Device::unlimited();
    let config = SolverConfig {
        faults: Some(FaultPlan {
            seed: 2,
            alloc_rate: 0.0,
            launch_rate: 1.0,
            max_retries: 1,
        }),
        ..SolverConfig::default()
    };
    let err = MaxCliqueSolver::with_config(device.clone(), config)
        .solve(&graph)
        .unwrap_err();
    assert!(
        matches!(err, SolveError::FaultRetriesExhausted { attempts: 2 }),
        "expected FaultRetriesExhausted with 2 attempts, got {err:?}"
    );
    assert_eq!(device.memory().live(), 0);
}
