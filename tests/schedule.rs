//! Scheduling integration: dynamic morsel claiming must actually rebalance
//! a starved grid, the solver must plumb `ScheduleStats` through
//! `SolveStats`, and the parallel window sweep must report its per-worker
//! drain/idle counters.

use std::time::Duration;

use gpu_max_clique::graph::generators;
use gpu_max_clique::mce::{MaxCliqueSolver, WindowConfig};
use gpu_max_clique::prelude::{Device, Executor, Schedule};

/// Busy-work proportional to `units`; opaque to the optimiser so the loop
/// is real work, not a no-op.
fn burn(units: u64) {
    for i in 0..units * 400 {
        std::hint::black_box(i);
    }
}

/// A starved grid: the first `HEAVY` items carry ~90% of the total cost and
/// all land in worker 0's static chunk, so the static schedule serialises
/// almost the whole launch while dynamic claiming spreads it.
const GRID: usize = 4096;
const HEAVY: usize = 512;

fn item_cost(i: usize) -> u64 {
    if i < HEAVY {
        63
    } else {
        1
    }
}

fn starved_wall(workers: usize, schedule: Schedule) -> Duration {
    let exec = Executor::new(workers);
    exec.set_schedule(schedule);
    // Minimum over three runs: the most repeatable statistic for a
    // deterministic workload on a shared machine.
    (0..3)
        .map(|_| {
            let start = std::time::Instant::now();
            exec.for_each_weighted(GRID, item_cost, |i| burn(item_cost(i)));
            start.elapsed()
        })
        .min()
        .expect("three samples")
}

#[test]
fn dynamic_schedule_beats_static_on_a_starved_grid() {
    let cores = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    if cores < 2 {
        // With one core the schedules timeshare identically; nothing to
        // measure. The decomposition itself is covered by the determinism
        // suite and the dpp unit tests.
        eprintln!("skipping starvation timing: single-core machine");
        return;
    }
    let workers = cores.min(4);
    let static_wall = starved_wall(workers, Schedule::Static);
    let dynamic_wall = starved_wall(workers, Schedule::Morsel { grain: 64 });
    // Static serialises ~90% of the work on one worker; with w >= 2 workers
    // dynamic claiming bounds the wall clock near total/w, a >= 1.8x gap in
    // theory. Gate at 1.25x to stay robust against scheduler noise.
    assert!(
        dynamic_wall * 5 <= static_wall * 4,
        "morsel claiming did not rebalance the starved grid: \
         dynamic {dynamic_wall:?} vs static {static_wall:?} on {workers} workers"
    );
}

#[test]
fn weighted_launches_feed_schedule_stats() {
    let exec = Executor::new(4);
    exec.set_schedule(Schedule::Morsel { grain: 256 });
    exec.for_each_weighted(GRID, item_cost, |i| {
        std::hint::black_box(i);
    });
    let stats = exec.schedule_stats();
    assert_eq!(stats.pool_launches, 1);
    assert_eq!(stats.dynamic_launches, 1);
    assert_eq!(stats.weighted_launches, 1);
    assert_eq!(stats.morsels, GRID.div_ceil(256) as u64);
    assert!(stats.max_worker_morsels >= 1);
    assert!(stats.imbalance() >= 1.0 || stats.imbalance() == 0.0);
}

#[test]
fn solver_reports_schedule_stats_per_solve() {
    // Dense enough that the level grids clear the sequential-inline limit,
    // so the schedules actually reach the worker pool.
    let graph = generators::gnp(400, 0.2, 3);

    let dynamic = MaxCliqueSolver::new(Device::new(4, usize::MAX))
        .schedule(Schedule::Morsel { grain: 512 })
        .solve(&graph)
        .unwrap();
    assert!(dynamic.stats.sched.pool_launches > 0);
    assert!(dynamic.stats.sched.dynamic_launches > 0);
    assert!(
        dynamic.stats.sched.weighted_launches > 0,
        "the fused pipeline issues cost-weighted launches"
    );
    assert!(dynamic.stats.sched.morsels >= dynamic.stats.sched.dynamic_launches);

    let static_run = MaxCliqueSolver::new(Device::new(4, usize::MAX))
        .schedule(Schedule::Static)
        .solve(&graph)
        .unwrap();
    assert_eq!(static_run.stats.sched.dynamic_launches, 0);
    assert_eq!(static_run.cliques, dynamic.cliques);

    // The installed schedule is restored after the solve: per-solve
    // configuration must not leak into the device.
    let device = Device::new(4, usize::MAX);
    let before = device.exec().schedule();
    MaxCliqueSolver::new(device.clone())
        .schedule(Schedule::Guided)
        .solve(&graph)
        .unwrap();
    assert_eq!(device.exec().schedule(), before);
}

#[test]
fn parallel_window_sweep_reports_worker_balance() {
    let graph = generators::gnp(120, 0.18, 9);
    let result = MaxCliqueSolver::new(Device::new(4, usize::MAX))
        .windowed(WindowConfig {
            enumerate_all: true,
            ..WindowConfig::with_size(64).parallel(4)
        })
        .solve(&graph)
        .unwrap();
    let w = result
        .stats
        .window
        .expect("windowed solve has window stats");
    assert!(
        w.sweep_workers >= 2,
        "sweep ran on {} workers",
        w.sweep_workers
    );
    assert!(
        w.sweep_drained_max >= 1 && w.sweep_drained_max <= w.num_windows,
        "drained-max {} out of range (windows {})",
        w.sweep_drained_max,
        w.num_windows
    );
    // Idle time is wall-clock minus busy summed over workers; it can be
    // zero on a perfectly balanced sweep but must never exceed workers x
    // the sweep wall clock, which total_time bounds from above.
    let bound = result.stats.total_time.as_nanos() as u64 * w.sweep_workers as u64;
    assert!(
        w.sweep_idle_ns <= bound,
        "idle {} > bound {}",
        w.sweep_idle_ns,
        bound
    );

    // The sequential sweep records no parallel-drain counters.
    let sequential = MaxCliqueSolver::new(Device::new(4, usize::MAX))
        .windowed(WindowConfig {
            enumerate_all: true,
            ..WindowConfig::with_size(64)
        })
        .solve(&graph)
        .unwrap();
    let sw = sequential.stats.window.expect("window stats");
    assert_eq!(sw.sweep_workers, 0);
    assert_eq!(result.cliques, sequential.cliques);
}
